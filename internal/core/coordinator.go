// Package core implements GPUnion's central coordinator (§3.2): node
// registration and authentication, the real-time resource view, the
// scheduling loop over the pending-job priority queue, heartbeat-based
// failure detection, and the execution side of the resilient-migration
// mechanism.
//
// The coordinator is transport-agnostic: agents are reached through the
// AgentHandle interface, implemented in-process (tests, discrete-event
// simulation) and over HTTP (the real daemons in cmd/).
package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/auth"
	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/heartbeat"
	"gpunion/internal/migration"
	"gpunion/internal/monitor"
	"gpunion/internal/netsim"
	"gpunion/internal/obs"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
	"gpunion/internal/workload"
)

// Errors returned by the coordinator.
var (
	ErrUnknownNode = errors.New("core: unknown node")
	ErrUnknownJob  = errors.New("core: unknown job")
	ErrBadToken    = errors.New("core: invalid token")
)

// AgentHandle is the coordinator's transport to one provider agent.
// Launch and Kill requests carry the sending leader's epoch in their
// envelope; agents reject writes from a deposed leader (the fencing
// half of lease-based leadership).
type AgentHandle interface {
	// Launch starts a workload on the node.
	Launch(req api.LaunchRequest) (api.LaunchResponse, error)
	// Kill terminates a job on the node.
	Kill(req api.KillRequest) error
	// Checkpoint captures a job's state on demand.
	Checkpoint(jobID string, incremental bool) (api.CheckpointResponse, error)
}

// Config parameterises the coordinator.
type Config struct {
	// HeartbeatInterval is the period agents must report at.
	HeartbeatInterval time.Duration
	// MissedThreshold is how many silent intervals mark a node lost.
	MissedThreshold int
	// Strategy picks the scheduling strategy (nil = round-robin).
	Strategy scheduler.Strategy
	// BatchSize caps how many pending requests one scheduling cycle
	// drains as a single batch (0 = 32). The feasible candidate set is
	// built once per batch, not once per request.
	BatchSize int
	// TokenTTL bounds issued credentials (0 = 30 days).
	TokenTTL time.Duration
	// AuthSecret seeds the token authority. Persisting it (the WAL-
	// enabled daemon keeps it next to the log) lets credentials issued
	// before a coordinator restart verify after it; nil generates an
	// ephemeral secret, invalidating all tokens on restart.
	AuthSecret []byte
	// Net optionally models LAN transfer timing for migrations;
	// StorageNode names the netsim node holding checkpoint data.
	Net         *netsim.Network
	StorageNode string
	// Trace optionally supplies a shared flight recorder. The common
	// case is nil: New creates a recorder and attaches it to the event
	// bus, so every coordinator traces from birth. A harness that runs
	// several coordinator incarnations over one bus passes the same
	// recorder to each — it is assumed already attached, and New will
	// not attach it again (the bus cannot unsubscribe, so re-attaching
	// would duplicate every event).
	Trace *obs.Recorder
	// EnableProfiling mounts net/http/pprof on the coordinator's HTTP
	// handler (diagnostics; off by default — profiles expose internals).
	EnableProfiling bool
	// Lease enables replicated operation: the coordinator only serves
	// mutations while it holds the lease (TryLead), every externally
	// visible write is fenced by the lease's epoch, and losing the
	// lease demotes it permanently (its store may have diverged from
	// the new leader's — rejoining requires a fresh standby bootstrap).
	// Nil is standalone mode: always leader, epoch zero, no fencing —
	// the pre-replication behavior, unchanged.
	Lease LeaseClient
	// ReplicaID names this coordinator replica to the lease arbiter and
	// in LeaderHint replies. Required when Lease is set.
	ReplicaID string
}

// jobMeta is the relaunch information not stored in the database record.
type jobMeta struct {
	image          string
	kind           string
	entrypoint     []string
	ckptSec        int
	training       *workload.TrainingSpec
	sessionSeconds int
	lostAt         time.Time // when the job was displaced (downtime basis)
}

// Coordinator is the central scheduler and coordination hub.
type Coordinator struct {
	cfg   Config
	clock simclock.Clock
	db    db.Store
	authy *auth.Authority
	sched *scheduler.Scheduler
	// pool is the scheduler's incremental candidate cache, fed by the
	// store's mutation stream; poolCancel detaches the feed on Stop.
	pool       *scheduler.NodePool
	poolCancel func()
	hb         *heartbeat.Monitor
	ckpts      *checkpoint.Store
	mig        *migration.Engine
	// healthParams tunes the health fold; fixed to the defaults so the
	// health-score-consistent invariant can recompute every fold.
	healthParams monitor.HealthParams
	bus          *eventbus.Bus
	metrics      *monitor.Registry
	met          *coordMetrics
	trace        *obs.Recorder
	// metCancel detaches the metrics mutation feed on Stop (the pool's
	// feed has its own cancel).
	metCancel func()

	mu     sync.Mutex
	agents map[string]AgentHandle
	meta   map[string]*jobMeta
	// beatSeq is the duplicate-delivery guard on heartbeat ingress: the
	// highest beat sequence processed per node. A beat at or below it is
	// a replay and is acknowledged without side effects. Reset per node
	// on Register (an agent restart restarts its counter).
	beatSeq map[string]uint64
	// beats is the heartbeat coalescing buffer: no-op beats (state
	// unchanged, only LastHeartbeat advancing) park here instead of
	// paying a full per-beat store commit, and a simclock tick at
	// HeartbeatInterval/4 flushes the batch through one TouchNodes call
	// per shard. The heartbeat monitor still sees every beat
	// individually; only the store write is deferred.
	beats map[string]time.Time
	// beatTimer is the armed flush tick; nil while the buffer is empty
	// (idle fleets pay no timer churn).
	beatTimer        simclock.Timer
	jobSeq           int
	interactiveCount int
	// recentHealth is a bounded per-node ring of the latest ingested
	// health events — diagnostic state for the health endpoint, never
	// persisted (the WAL carries the events inside MutNodeHealth).
	recentHealth map[string][]gpu.HealthEvent
	// temporary tracks nodes that departed with return intent.
	temporary map[string]bool
	stopped   bool
	sweeper   simclock.Timer
	// Leadership state (Lease mode only). epoch is the fencing token of
	// the current (or last) term; leading and leaseUntil gate every
	// mutation — a coordinator whose cached lease has passed on its own
	// clock self-fences even when it cannot reach the arbiter.
	epoch      uint64
	leading    bool
	leaseUntil time.Time
	renewTimer simclock.Timer

	schedLatency *monitor.Histogram
}

// New creates a coordinator. database and ckpts may be shared with other
// components (the simulation inspects them); a database that was
// recovered from a snapshot + write-ahead log should be followed by
// RecoverState before traffic is admitted.
func New(cfg Config, clock simclock.Clock, database db.Store, ckpts *checkpoint.Store, bus *eventbus.Bus) (*Coordinator, error) {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = heartbeat.DefaultInterval
	}
	if cfg.MissedThreshold <= 0 {
		cfg.MissedThreshold = heartbeat.DefaultMissedThreshold
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if bus == nil {
		bus = eventbus.New(0)
	}
	authy, err := auth.NewAuthority(cfg.AuthSecret, cfg.TokenTTL)
	if err != nil {
		return nil, fmt.Errorf("core: creating token authority: %w", err)
	}
	sched := scheduler.New(cfg.Strategy, scheduler.DefaultReliability())
	metrics := monitor.NewRegistry()
	latency, err := metrics.Histogram("gpunion_scheduling_latency_seconds",
		"Latency of one scheduling decision",
		[]float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5}, nil)
	if err != nil {
		return nil, err
	}
	met, err := newCoordMetrics(metrics)
	if err != nil {
		return nil, err
	}
	trace := cfg.Trace
	if trace == nil {
		trace = obs.NewRecorder(clock, 0)
		trace.Attach(bus)
	}
	c := &Coordinator{
		cfg:          cfg,
		clock:        clock,
		db:           database,
		authy:        authy,
		sched:        sched,
		hb:           heartbeat.NewMonitor(cfg.HeartbeatInterval, cfg.MissedThreshold),
		ckpts:        ckpts,
		mig:          migration.New(sched, ckpts, cfg.Net, cfg.StorageNode),
		healthParams: monitor.DefaultHealthParams(),
		bus:          bus,
		metrics:      metrics,
		met:          met,
		trace:        trace,
		agents:       make(map[string]AgentHandle),
		meta:         make(map[string]*jobMeta),
		beatSeq:      make(map[string]uint64),
		beats:        make(map[string]time.Time),
		temporary:    make(map[string]bool),
		schedLatency: latency,
	}
	// Subscribe the scheduler pool before the seeding scan: Reset
	// holds the pool lock across its watermark read + scan, so every
	// concurrent mutation is either contained in the scan or applied
	// afterwards through the observer's LSN guard.
	c.pool = sched.NewNodePool()
	c.poolCancel = database.AddMutationObserver(c.pool.Observe)
	c.pool.Reset(database)
	// Per-(type, shard) mutation counters ride the same feed the pool
	// uses; a separate subscription keeps the cancels independent.
	c.metCancel = database.AddMutationObserver(func(m db.Mutation) {
		met.observeMutation(m.Type, database.ShardFor(m))
	})
	if cfg.Lease == nil {
		// Standalone: leader from birth. In Lease mode the coordinator
		// starts as a fenced standby; TryLead arms the sweeper.
		c.scheduleSweep()
	}
	return c, nil
}

// DB exposes the system database (read paths for tools and tests).
func (c *Coordinator) DB() db.Store { return c.db }

// Checkpoints exposes the checkpoint store.
func (c *Coordinator) Checkpoints() *checkpoint.Store { return c.ckpts }

// AuditSchedulerPool verifies the scheduler's cached node pool against
// a fresh store scan (see scheduler.NodePool.Audit). The chaos harness
// calls it at every audit point; any discrepancy is a platform bug.
func (c *Coordinator) AuditSchedulerPool() []string { return c.pool.Audit(c.db) }

// Migration exposes the migration engine (statistics).
func (c *Coordinator) Migration() *migration.Engine { return c.mig }

// Metrics exposes the Prometheus-style registry.
func (c *Coordinator) Metrics() *monitor.Registry { return c.metrics }

// Bus exposes the event bus.
func (c *Coordinator) Bus() *eventbus.Bus { return c.bus }

// Trace exposes the flight recorder.
func (c *Coordinator) Trace() *obs.Recorder { return c.trace }

// InteractiveSessions reports how many interactive sessions have been
// launched (the Fig. 2 "+40% interactive sessions" statistic).
func (c *Coordinator) InteractiveSessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.interactiveCount
}

// RecoverState re-arms a coordinator whose database was restored from
// a snapshot + write-ahead log (see internal/wal):
//
//   - the job-ID sequence resumes past every recovered job, so new
//     submissions cannot collide with recovered ones;
//   - jobs caught mid-migration are requeued — their in-flight
//     checkpoint transfers died with the old process, and the pending
//     queue re-places them from their last durable checkpoint;
//   - failure detection is re-armed for every node that was active or
//     paused before the crash, dated from its last recorded heartbeat:
//     a node that outlived the coordinator keeps beating and is simply
//     re-adopted; one that died during the outage exceeds the missed
//     threshold and takes the normal emergency-migration path;
//   - relaunch metadata is rebuilt from the records' persisted specs
//     and a scheduling pass drains whatever the restored queue holds
//     (placements need agents, which re-attach as nodes re-register).
//
// Call it once, after New and before admitting traffic.
func (c *Coordinator) RecoverState() {
	// The restored state arrived via ImportState + Apply, outside the
	// live mutation stream; rebuild the derived scheduler pool from it.
	c.pool.Reset(c.db)
	now := c.clock.Now()
	maxSeq := 0
	for _, job := range c.db.ListJobs() {
		var n int
		if _, err := fmt.Sscanf(job.ID, "job-%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		switch job.State {
		case db.JobMigrating:
			c.requeueFromCheckpoint(job.ID, now)
			_ = c.metaFor(job)
		case db.JobPending, db.JobRunning:
			_ = c.metaFor(job)
		}
	}
	c.mu.Lock()
	if maxSeq > c.jobSeq {
		c.jobSeq = maxSeq
	}
	c.mu.Unlock()
	for _, n := range c.db.ListNodes() {
		if n.Status == db.NodeActive || n.Status == db.NodePaused {
			c.hb.Track(n.ID, n.LastHeartbeat)
		}
	}
	c.TrySchedule()
}

// Stop halts the background sweep timer and fences every deferred
// callback: a stopped coordinator must never touch agents or the
// database again, even if migration-transfer timers it armed earlier
// still fire. Without the fence, a crashed-and-replaced coordinator
// would keep launching jobs as a zombie while its successor owns the
// fleet — exactly the split-brain the chaos harness's kill/restart
// scenario watches for.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.leading = false
	if c.sweeper != nil {
		c.sweeper.Stop()
	}
	if c.renewTimer != nil {
		c.renewTimer.Stop()
	}
	if c.beatTimer != nil {
		c.beatTimer.Stop()
		c.beatTimer = nil
	}
	// The coalescing buffer is discarded, not flushed: a buffered beat
	// never became a store mutation, so nothing acknowledged depends on
	// it (acks cover the monitor update, which already happened), and a
	// stopped coordinator must not touch the database. Agents re-beat
	// within one interval, so the successor converges immediately.
	c.beats = nil
	c.mu.Unlock()
	// Detach the scheduler-pool feed: a replaced coordinator must not
	// keep consuming its successor's store mutations.
	c.poolCancel()
	c.metCancel()
}

// isStopped reports whether Stop was called.
func (c *Coordinator) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// --- Leadership (Lease mode) ---

// Epoch returns the coordinator's current leader epoch (zero in
// standalone mode or before the first TryLead).
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Leading reports whether this replica currently believes it holds the
// lease. Standalone coordinators always lead.
func (c *Coordinator) Leading() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leadingLocked()
}

// leadingLocked evaluates leadership under c.mu: standalone mode always
// leads; in Lease mode the cached grant must not have passed on the
// local clock — the self-fence that stops a zombie whose lease client
// is cut (it cannot hear ErrLeaseLost, but it can read its own watch).
func (c *Coordinator) leadingLocked() bool {
	if c.cfg.Lease == nil {
		return !c.stopped
	}
	return !c.stopped && c.leading && c.clock.Now().Before(c.leaseUntil)
}

// TryLead attempts to acquire the lease and become the leader. On
// success the sweeper and the renewal loop start and mutations are
// admitted under the new epoch. Call after New (+ RecoverState, for a
// promoted standby). No-op returning true in standalone mode.
func (c *Coordinator) TryLead() bool {
	if c.cfg.Lease == nil {
		return true
	}
	epoch, until, err := c.cfg.Lease.Acquire(c.cfg.ReplicaID)
	if err != nil {
		return false
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return false
	}
	c.epoch = epoch
	c.leaseUntil = until
	c.leading = true
	c.mu.Unlock()
	c.met.leaderChanges.Inc()
	c.bus.Publish(eventbus.Event{Type: eventbus.LeaderElected, Time: c.clock.Now(),
		Node: c.cfg.ReplicaID, Detail: map[string]any{"epoch": epoch}})
	c.scheduleSweep()
	c.scheduleRenew()
	return true
}

// scheduleRenew arms the next lease renewal at a third of the remaining
// grant, so two renewals can fail before the lease lapses.
func (c *Coordinator) scheduleRenew() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || !c.leading {
		return
	}
	d := c.leaseUntil.Sub(c.clock.Now()) / 3
	if d <= 0 {
		d = time.Millisecond
	}
	c.renewTimer = c.clock.AfterFunc(d, c.renewLease)
}

// renewLease extends the grant or steps down. A transport failure is
// not a demotion by itself — the replica keeps serving while its cached
// grant is live and retries — but once the grant passes on the local
// clock without a successful renewal, the replica self-fences: the
// arbiter's re-grant grace (skew tolerance) guarantees no successor
// exists before that moment.
func (c *Coordinator) renewLease() {
	c.mu.Lock()
	if c.stopped || !c.leading {
		c.mu.Unlock()
		return
	}
	holder, epoch := c.cfg.ReplicaID, c.epoch
	c.mu.Unlock()
	until, err := c.cfg.Lease.Renew(holder, epoch)
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			c.stepDown("lease lost")
			return
		}
		c.mu.Lock()
		live := c.clock.Now().Before(c.leaseUntil)
		c.mu.Unlock()
		if !live {
			c.stepDown("lease expired unrenewed")
			return
		}
		c.scheduleRenew()
		return
	}
	c.mu.Lock()
	c.leaseUntil = until
	c.mu.Unlock()
	c.scheduleRenew()
}

// stepDown demotes a leader in place. The demotion is permanent for
// this instance: its store may have diverged from the new leader's
// during the overlap, so rejoining the replica group requires a fresh
// standby bootstrap from the new leader's log, not a re-acquire.
func (c *Coordinator) stepDown(reason string) {
	c.mu.Lock()
	if !c.leading {
		c.mu.Unlock()
		return
	}
	c.leading = false
	if c.sweeper != nil {
		c.sweeper.Stop()
	}
	if c.renewTimer != nil {
		c.renewTimer.Stop()
	}
	epoch := c.epoch
	c.mu.Unlock()
	c.met.leaderChanges.Inc()
	c.bus.Publish(eventbus.Event{Type: eventbus.LeaderDeposed, Time: c.clock.Now(),
		Node: c.cfg.ReplicaID, Detail: map[string]any{"epoch": epoch, "reason": reason}})
}

// fence gates one mutating request. reqEpoch is the envelope epoch the
// caller presented (zero = legacy/no epoch). It returns a typed
// api.ErrNotLeader when this replica must not serve the request: it is
// a standby, its lease lapsed, or the request proves a newer leader
// exists (in which case the replica steps down first — the epoch
// comparison is the PR-3 stopped-coordinator fence generalized to
// terms). Nil in standalone mode.
func (c *Coordinator) fence(reqEpoch uint64) error {
	if c.cfg.Lease == nil {
		return nil
	}
	c.mu.Lock()
	if reqEpoch > c.epoch {
		c.mu.Unlock()
		c.stepDown("superseded by higher epoch")
		c.mu.Lock()
	}
	ok := c.leadingLocked()
	epoch := c.epoch
	c.mu.Unlock()
	if ok {
		return nil
	}
	hint, arbiterEpoch := c.cfg.Lease.Leader()
	if arbiterEpoch > epoch {
		epoch = arbiterEpoch
	}
	if hint == c.cfg.ReplicaID {
		// The arbiter still names us, but we are fenced (stopped or
		// stepped down): do not send traffic back to ourselves.
		hint = ""
	}
	// A fenced write is the end of a failover span: the first one after
	// a step-down proves the old leader can no longer mutate state.
	c.met.fencedWrites.Inc()
	c.trace.Record(obs.KindWriteFenced, "", c.cfg.ReplicaID, map[string]string{
		"req_epoch":   strconv.FormatUint(reqEpoch, 10),
		"local_epoch": strconv.FormatUint(epoch, 10),
	})
	return api.ErrNotLeader{LeaderHint: hint, Epoch: epoch}
}

// envelope stamps outgoing coordinator→agent requests with the current
// protocol version and leader epoch.
func (c *Coordinator) envelope() api.Envelope {
	return api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: c.Epoch()}
}

func (c *Coordinator) scheduleSweep() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.sweeper = c.clock.AfterFunc(c.cfg.HeartbeatInterval, func() {
		c.Sweep()
		c.scheduleSweep()
	})
	c.mu.Unlock()
}

// --- Node lifecycle ---

// Register admits a node (or re-admits a returning one) and returns its
// credentials. handle is the transport used to reach the node's agent.
func (c *Coordinator) Register(req api.RegisterRequest, handle AgentHandle) (api.RegisterResponse, error) {
	if req.MachineID == "" {
		return api.RegisterResponse{}, errors.New("core: empty machine id")
	}
	version, ok := api.NegotiateVersion(req.ProtocolVersion)
	if !ok {
		return api.RegisterResponse{}, api.ErrVersionMismatch{
			Requested: req.ProtocolVersion,
			Min:       api.MinProtocolVersion, Max: api.ProtocolVersion,
		}
	}
	if err := c.fence(req.LeaderEpoch); err != nil {
		return api.RegisterResponse{}, err
	}
	now := c.clock.Now()
	token, err := c.authy.Issue(req.MachineID, auth.RoleProvider, now)
	if err != nil {
		return api.RegisterResponse{}, fmt.Errorf("core: issuing token: %w", err)
	}

	returning := false
	if old, err := c.db.GetNode(req.MachineID); err == nil &&
		(old.Status == db.NodeDeparted || old.Status == db.NodeUnreachable) {
		returning = true
	}

	rec := db.NodeRecord{
		ID: req.MachineID, Addr: req.Addr, Status: db.NodeActive,
		GPUs: req.GPUs, Kernel: req.Kernel, Storage: req.StorageBytes,
		RegisteredAt: now, LastHeartbeat: now, LastJoin: now,
	}
	if old, err := c.db.GetNode(req.MachineID); err == nil {
		rec.RegisteredAt = old.RegisteredAt
		rec.Departures = old.Departures
		rec.TotalUptime = old.TotalUptime
	}
	c.db.UpsertNode(rec)

	c.mu.Lock()
	c.agents[req.MachineID] = handle
	// A (re-)registration starts a fresh beat-sequence session: an agent
	// process restart restarts its counter at one, which must not be
	// mistaken for a replay of the previous session's beats.
	delete(c.beatSeq, req.MachineID)
	c.mu.Unlock()
	c.hb.Track(req.MachineID, now)

	c.bus.Publish(eventbus.Event{Type: eventbus.NodeRegistered, Time: now, Node: req.MachineID})
	if returning {
		c.handleNodeReturn(req.MachineID, now)
	}
	c.TrySchedule()
	return api.RegisterResponse{
		Token: token, HeartbeatInterval: c.cfg.HeartbeatInterval,
		ProtocolVersion: version, LeaderEpoch: c.Epoch(),
	}, nil
}

// Heartbeat processes a periodic agent report.
func (c *Coordinator) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	if err := c.fence(req.LeaderEpoch); err != nil {
		return api.HeartbeatResponse{}, err
	}
	return c.heartbeatAt(req, c.clock.Now())
}

// heartbeatAt is the fenced heartbeat body with an explicit receipt
// time. The direct path stamps clock.Now(); aggregated ingestion
// (IngestAggregated) replays each rolled-up beat through here with the
// aggregator's receipt time, so both paths fold to byte-identical
// store state — same dedup, same reconciliation, same coalescing.
// Callers must have fenced the request's epoch already.
func (c *Coordinator) heartbeatAt(req api.HeartbeatRequest, now time.Time) (api.HeartbeatResponse, error) {
	if _, err := c.authy.VerifySubject(req.Token, req.MachineID, now); err != nil {
		if errors.Is(err, auth.ErrExpired) {
			// Long-lived nodes outlive their credentials (semester-scale
			// participation): ask for a fresh registration rather than
			// dropping the node.
			return api.HeartbeatResponse{Reregister: true}, nil
		}
		return api.HeartbeatResponse{}, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	// Duplicate-delivery guard: every beat an agent builds carries a
	// fresh sequence number, so a beat at or below the high-water mark
	// is a replay (a retried request, a duplicated packet) of a report
	// already fully processed. It is acknowledged — the sender's retry
	// loop must stop — but causes no state change: no samples appended,
	// no telemetry refresh, no anti-entropy scan. Zero means the sender
	// predates sequences and is always processed. The sequence is
	// *claimed* up front — a concurrent duplicate of an in-flight beat
	// must not start a second pass through the body — and released if
	// the beat bounces early (unknown node, dead handle — the
	// Reregister paths): a bounced beat was not applied, and its retry
	// must be processed, not swallowed.
	beatApplied := false
	if req.BeatSeq > 0 {
		c.mu.Lock()
		if req.BeatSeq <= c.beatSeq[req.MachineID] {
			c.mu.Unlock()
			c.met.heartbeatDups.Inc()
			// A replay is only acknowledged while the node is still a
			// live member. If the record is gone, the node was swept dead
			// or departed, or the agent handle died with an old process,
			// the original beat's processing no longer stands — and a
			// replay must not perform side effects, so it cannot re-adopt
			// the node the way a fresh beat would. Ask for a fresh
			// registration instead of silencing the agent's retry loop.
			if rec, gerr := c.db.GetNode(req.MachineID); gerr != nil ||
				rec.Status == db.NodeUnreachable || rec.Status == db.NodeDeparted ||
				c.handle(req.MachineID) == nil {
				return api.HeartbeatResponse{Reregister: true}, nil
			}
			return api.HeartbeatResponse{Acknowledged: true}, nil
		}
		prevSeq := c.beatSeq[req.MachineID]
		c.beatSeq[req.MachineID] = req.BeatSeq
		c.mu.Unlock()
		defer func() {
			if beatApplied {
				return
			}
			c.mu.Lock()
			if c.beatSeq[req.MachineID] == req.BeatSeq {
				c.beatSeq[req.MachineID] = prevSeq
			}
			c.mu.Unlock()
		}()
	}
	c.met.heartbeats.Inc()
	rec, err := c.db.GetNode(req.MachineID)
	if err != nil {
		return api.HeartbeatResponse{Reregister: true}, nil
	}
	if c.handle(req.MachineID) == nil {
		// The record survived (e.g. restored from snapshot + WAL) but
		// the transport to the agent died with the old process: ask the
		// node to re-register so the handle is re-established.
		return api.HeartbeatResponse{Reregister: true}, nil
	}

	wasAway := rec.Status == db.NodeUnreachable || rec.Status == db.NodeDeparted
	newStatus := db.NodeActive
	if req.Paused {
		newStatus = db.NodePaused
	}

	// Database-side orphan detection: a node that lost power and came
	// back inside the missed-heartbeat window (so the sweep never
	// fired) lost its workloads, but its job records still read
	// Running. The scan over the node's jobs runs only when the cheap
	// divergence signals fire — the report's job count disagreeing with
	// the record's allocated-device count, or the telemetry flipping an
	// allocated device to free — so steady-state heartbeats stay O(1)
	// in the job table.
	// Classify the report once: entries the platform cannot match to a
	// placement on this node (unknown, stale or foreign jobs) force the
	// lost-placement scan — such a job may be occupying a device and
	// keeping the counts equal while a genuine placement went missing —
	// and the provably stale ones are killed below. Pending and
	// migrating records are never killed (a launch for that very job
	// may be in flight to this node, committed only after the agent
	// starts it), and neither is a placement elsewhere still inside the
	// heartbeat grace: this report may simply predate it.
	reported := make(map[string]bool, len(req.RunningJobs))
	suspicious := false
	var orphans []string
	for _, jobID := range req.RunningJobs {
		reported[jobID] = true
		jrec, jerr := c.db.GetJob(jobID)
		if jerr != nil {
			suspicious = true // agent-local work the platform never tracked
			continue
		}
		if jrec.NodeID == req.MachineID &&
			(jrec.State == db.JobRunning || jrec.State == db.JobMigrating) {
			continue // legitimate placement
		}
		suspicious = true
		if jrec.State == db.JobPending || jrec.State == db.JobMigrating {
			continue
		}
		if jrec.State == db.JobRunning && now.Sub(jrec.PlacedAt) < c.cfg.HeartbeatInterval {
			continue
		}
		orphans = append(orphans, jobID)
	}
	lost, protected := c.lostPlacements(rec, reported, req.Telemetry, suspicious, now)

	// Health events ride the beat. The bound is enforced coordinator-
	// side too — a hostile or buggy agent must not widen a fold beyond
	// what the protocol promises. Sitting after the dedup guard, a
	// replayed beat can never fold its events twice.
	health := req.HealthEvents
	if len(health) > api.MaxHealthEventsPerBeat {
		health = health[:api.MaxHealthEventsPerBeat]
	}

	if c.isNoopBeat(rec, req.Telemetry, health, wasAway, newStatus, suspicious, lost, orphans, protected) {
		// Steady state at fleet scale: nothing about the record changes
		// but LastHeartbeat. The advance parks in the coalescing buffer —
		// a tick at HeartbeatInterval/4 commits the whole batch as one
		// compact MutBeat record per shard — instead of pushing a full
		// node after-image through the WAL for every beat.
		c.enqueueBeat(req.MachineID, now)
	} else {
		uerr := c.db.UpdateNode(req.MachineID, func(n *db.NodeRecord) {
			n.LastHeartbeat = now
			n.Status = newStatus
			if wasAway {
				n.LastJoin = now
			}
			// Refresh device allocation truth from the agent. A device
			// whose running job is inside the placement grace keeps its
			// flag: the job may simply postdate the report, and the store
			// must never show a running job on a free device.
			for i := range n.GPUs {
				for _, tel := range req.Telemetry {
					if n.GPUs[i].DeviceID == tel.DeviceID && !protected[tel.DeviceID] {
						n.GPUs[i].Allocated = tel.Allocated
					}
				}
			}
		})
		if uerr != nil {
			return api.HeartbeatResponse{Reregister: true}, nil
		}
	}
	c.hb.Beat(req.MachineID, now)

	if len(health) > 0 {
		c.ingestHealth(req.MachineID, health, now)
	}

	// Persist telemetry history for capacity planning (§3.2).
	for _, tel := range req.Telemetry {
		c.db.AppendSample(db.Sample{Time: now, NodeID: req.MachineID,
			Metric: "gpu_utilization", Value: tel.Utilization})
		c.db.AppendSample(db.Sample{Time: now, NodeID: req.MachineID,
			Metric: "gpu_memory_used_mib", Value: float64(tel.UsedMemMiB)})
	}

	// The host no longer executes these placements: requeue them from
	// their last checkpoints, exactly like an emergency displacement.
	// The old episode is closed while the record still points at it —
	// flipping to pending first would let a concurrent scheduling pass
	// open a fresh episode that this CloseAllocation would then eat.
	// The state re-check runs inside the record lock: a concurrent
	// terminal update (the agent's completion racing this heartbeat on
	// the HTTP path) must win, not be flipped back to pending.
	for _, job := range lost {
		c.freeDevice(job.NodeID, job.DeviceID)
		// Identity-scoped close: a duplicate heartbeat racing this one
		// may already have requeued and re-placed the job — the fresh
		// episode on the new device must not be the one that closes.
		_ = c.db.CloseAllocationEpisode(job.ID, job.NodeID, job.DeviceID, now)
		requeued := false
		_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) {
			if j.State != db.JobRunning || j.NodeID != req.MachineID {
				return
			}
			j.State = db.JobPending
			j.NodeID, j.DeviceID = "", ""
			requeued = true
		})
		if requeued {
			c.bus.Publish(eventbus.Event{Type: eventbus.JobRequeued, Time: now, Job: job.ID})
		}
	}
	c.killOrphans(req.MachineID, orphans, now)

	if wasAway {
		c.handleNodeReturn(req.MachineID, now)
	}
	c.TrySchedule()
	// The beat is fully applied: the claimed sequence stays as the
	// dedup high-water mark.
	beatApplied = true
	return api.HeartbeatResponse{Acknowledged: true, LeaderEpoch: c.Epoch()}, nil
}

// lostPlacements compares the heartbeat report against the node's
// recorded placements. It returns the running jobs the node has
// stopped reporting (to be requeued) and the devices of just-placed
// jobs whose absence from the report is not yet meaningful (their
// allocation flags must not be refreshed from this report). rec is the
// node record as read before this heartbeat's updates; suspicious
// forces the scan regardless of the cheap count/flip signals.
func (c *Coordinator) lostPlacements(rec db.NodeRecord, reported map[string]bool, tel []gpu.Telemetry, suspicious bool, now time.Time) (lost []db.JobRecord, protected map[string]bool) {
	allocatedNow := make(map[string]bool, len(tel))
	for _, t := range tel {
		allocatedNow[t.DeviceID] = t.Allocated
	}
	expected, flipped := 0, false
	for _, g := range rec.GPUs {
		if !g.Allocated {
			continue
		}
		expected++
		if alloc, ok := allocatedNow[g.DeviceID]; ok && !alloc {
			flipped = true
		}
	}
	if !suspicious && !flipped && expected == len(reported) {
		return nil, nil
	}
	protected = make(map[string]bool)
	for _, job := range c.db.JobsOnNode(rec.ID) {
		if job.State != db.JobRunning || reported[job.ID] {
			continue
		}
		if !job.PlacedAt.IsZero() && now.Sub(job.PlacedAt) < c.cfg.HeartbeatInterval {
			// Placed after the agent built this report; the next
			// report decides.
			protected[job.DeviceID] = true
			continue
		}
		lost = append(lost, job)
	}
	return lost, protected
}

// killOrphans is the agent-side half of heartbeat anti-entropy: a node
// that kept executing through a partition or a coordinator outage may
// still hold jobs the platform has since migrated elsewhere or
// resolved. The caller has already classified which reported jobs are
// provably stale; those copies are killed at the reporting node — one
// job must never run twice.
func (c *Coordinator) killOrphans(machineID string, orphans []string, now time.Time) {
	if len(orphans) == 0 {
		return
	}
	h := c.handle(machineID)
	if h == nil {
		return
	}
	for _, jobID := range orphans {
		if kerr := h.Kill(api.KillRequest{Envelope: c.envelope(), JobID: jobID}); kerr == nil {
			c.bus.Publish(eventbus.Event{Type: eventbus.JobKilled, Time: now,
				Job: jobID, Node: machineID,
				Detail: map[string]any{"reason": "orphan-reconciliation"}})
		}
	}
}

// Depart processes an announced departure (scheduled or temporary). The
// agent has already checkpointed and stopped its workloads; the
// coordinator migrates them and updates the node's standing.
func (c *Coordinator) Depart(req api.DepartRequest) error {
	if err := c.fence(req.LeaderEpoch); err != nil {
		return err
	}
	now := c.clock.Now()
	if req.Token != "" {
		if _, err := c.authy.VerifySubject(req.Token, req.MachineID, now); err != nil {
			return fmt.Errorf("%w: %v", ErrBadToken, err)
		}
	}
	return c.HandleDeparture(req.MachineID, req.Reason)
}

// HandleDeparture migrates a departing node's jobs and records its
// standing. It is the convergence point for the announced path (REST or
// in-process notify) — emergency departures are handled by Sweep.
func (c *Coordinator) HandleDeparture(machineID string, reason api.DepartReason) error {
	if err := c.fence(0); err != nil {
		return err
	}
	now := c.clock.Now()
	if _, err := c.db.GetNode(machineID); err != nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, machineID)
	}
	err := c.db.UpdateNode(machineID, func(n *db.NodeRecord) {
		n.Status = db.NodeDeparted
		n.Departures++
		if !n.LastJoin.IsZero() && now.After(n.LastJoin) {
			n.TotalUptime += now.Sub(n.LastJoin)
		}
		for i := range n.GPUs {
			n.GPUs[i].Allocated = false
		}
	})
	if err != nil {
		return err
	}
	c.hb.Suspend(machineID)
	c.mu.Lock()
	c.temporary[machineID] = reason == api.DepartTemporary
	// The dedup high-water mark dies with the membership: a returning
	// node re-registers, which starts a fresh beat-sequence session, so
	// keeping the entry would only leak an entry per churned node.
	// A buffered-but-unflushed beat is dropped with it — the record is
	// leaving service, and a LastHeartbeat advance on a departed node
	// would contradict the departure.
	delete(c.beatSeq, machineID)
	delete(c.beats, machineID)
	c.mu.Unlock()
	c.bus.Publish(eventbus.Event{Type: eventbus.NodeDeparted, Time: now, Node: machineID,
		Detail: map[string]any{"reason": string(reason)}})

	mreason := migration.ReasonScheduled
	if reason == api.DepartTemporary {
		mreason = migration.ReasonTemporary
	}
	c.migrateJobsFrom(machineID, mreason)
	return nil
}

// Sweep runs one failure-detection pass: nodes silent for the configured
// threshold are marked unreachable and their jobs migrated (emergency
// path). Daemons run this automatically; simulations may call it
// directly.
func (c *Coordinator) Sweep() {
	if c.isStopped() || !c.Leading() {
		return
	}
	now := c.clock.Now()
	for _, nodeID := range c.hb.Lost(now) {
		_ = c.db.UpdateNode(nodeID, func(n *db.NodeRecord) {
			n.Status = db.NodeUnreachable
			n.Departures++
			if !n.LastJoin.IsZero() && now.After(n.LastJoin) {
				n.TotalUptime += now.Sub(n.LastJoin)
			}
			for i := range n.GPUs {
				n.GPUs[i].Allocated = false
			}
		})
		c.mu.Lock()
		// Same pruning as the announced-departure path: swept-dead nodes
		// must not accumulate dedup entries (unbounded growth under
		// churn), and any beat still parked in the coalescing buffer is
		// from before the silence — advancing LastHeartbeat now would
		// contradict the unreachable verdict.
		delete(c.beatSeq, nodeID)
		delete(c.beats, nodeID)
		c.mu.Unlock()
		c.bus.Publish(eventbus.Event{Type: eventbus.NodeUnreachable, Time: now, Node: nodeID})
		c.migrateJobsFrom(nodeID, migration.ReasonEmergency)
	}
	c.sweepHealth(now)
}

// handleNodeReturn restores a node to service and migrates back the jobs
// that prefer it (§4: 67% of displaced workloads migrated back).
func (c *Coordinator) handleNodeReturn(nodeID string, now time.Time) {
	_ = c.db.UpdateNode(nodeID, func(n *db.NodeRecord) {
		if n.Status != db.NodeActive && n.Status != db.NodePaused {
			n.Status = db.NodeActive
		}
		n.LastJoin = now
	})
	c.bus.Publish(eventbus.Event{Type: eventbus.NodeReturned, Time: now, Node: nodeID})
	c.MigrateBack(nodeID)
	c.TrySchedule()
}

// --- Job lifecycle ---

// SubmitJob enqueues a user job and attempts immediate placement.
func (c *Coordinator) SubmitJob(req api.SubmitJobRequest) (string, error) {
	if err := c.fence(req.LeaderEpoch); err != nil {
		return "", err
	}
	if req.Kind != "batch" && req.Kind != "interactive" {
		return "", fmt.Errorf("core: unknown job kind %q", req.Kind)
	}
	if req.ImageName == "" {
		return "", errors.New("core: empty image name")
	}
	now := c.clock.Now()
	c.mu.Lock()
	c.jobSeq++
	jobID := fmt.Sprintf("job-%06d", c.jobSeq)
	c.meta[jobID] = &jobMeta{
		image:          req.ImageName,
		kind:           req.Kind,
		entrypoint:     req.Entrypoint,
		ckptSec:        req.CheckpointIntervalSec,
		training:       req.Training,
		sessionSeconds: req.SessionSeconds,
	}
	c.mu.Unlock()

	rec := db.JobRecord{
		ID: jobID, User: req.User, Kind: req.Kind, State: db.JobPending,
		Priority: req.Priority, GPUMemMiB: req.GPUMemMiB,
		CapabilityMajor: req.CapabilityMajor, CapabilityMinor: req.CapabilityMinor,
		StoragePrefs: req.StoragePrefs, SubmittedAt: now,
		// The relaunch spec rides in the record so a coordinator
		// recovered from snapshot + WAL can reschedule this job without
		// a resubmission.
		ImageName: req.ImageName, Entrypoint: req.Entrypoint,
		CheckpointIntervalSec: req.CheckpointIntervalSec,
		SessionSeconds:        req.SessionSeconds, Training: req.Training,
	}
	if err := c.db.InsertJob(rec); err != nil {
		return "", err
	}
	c.bus.Publish(eventbus.Event{Type: eventbus.JobSubmitted, Time: now, Job: jobID})
	c.TrySchedule()
	return jobID, nil
}

// JobStatus reports one job.
func (c *Coordinator) JobStatus(jobID string) (api.JobStatus, error) {
	rec, err := c.db.GetJob(jobID)
	if err != nil {
		return api.JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	return api.JobStatus{
		JobID: rec.ID, State: rec.State, NodeID: rec.NodeID, DeviceID: rec.DeviceID,
		Migrations: rec.Migrations, Submitted: rec.SubmittedAt,
		Started: rec.StartedAt, Finished: rec.FinishedAt,
	}, nil
}

// Jobs lists all jobs' statuses, newest first.
func (c *Coordinator) Jobs() []api.JobStatus {
	recs := c.db.ListJobs()
	out := make([]api.JobStatus, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		out = append(out, api.JobStatus{
			JobID: rec.ID, State: rec.State, NodeID: rec.NodeID, DeviceID: rec.DeviceID,
			Migrations: rec.Migrations, Submitted: rec.SubmittedAt,
			Started: rec.StartedAt, Finished: rec.FinishedAt,
		})
	}
	return out
}

// Nodes lists all registered nodes.
func (c *Coordinator) Nodes() []api.NodeSummary {
	recs := c.db.ListNodes()
	out := make([]api.NodeSummary, 0, len(recs))
	for _, n := range recs {
		out = append(out, api.NodeSummary{
			ID: n.ID, Status: n.Status, GPUs: n.GPUs,
			LastHeartbeat: n.LastHeartbeat, Departures: n.Departures,
		})
	}
	return out
}

// KillJob terminates a job wherever it runs.
func (c *Coordinator) KillJob(jobID string) error {
	if err := c.fence(0); err != nil {
		return err
	}
	rec, err := c.db.GetJob(jobID)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	now := c.clock.Now()
	if rec.State == db.JobRunning && rec.NodeID != "" {
		if h := c.handle(rec.NodeID); h != nil {
			// Node may be gone; record the kill anyway.
			_ = h.Kill(api.KillRequest{Envelope: c.envelope(), JobID: jobID})
		}
		c.freeDevice(rec.NodeID, rec.DeviceID)
		_ = c.db.CloseAllocation(jobID, now)
	}
	err = c.db.UpdateJob(jobID, func(j *db.JobRecord) {
		j.State = db.JobKilled
		j.FinishedAt = now
	})
	c.bus.Publish(eventbus.Event{Type: eventbus.JobKilled, Time: now, Job: jobID})
	c.TrySchedule()
	return err
}

// DefaultBatchSize is how many pending requests one scheduling cycle
// drains when Config.BatchSize is unset.
const DefaultBatchSize = 32

// TrySchedule drains the pending queue in priority order, placing jobs
// batch by batch: each cycle takes up to BatchSize requests, runs one
// PlaceBatch over a candidate set built once, and commits the
// placements. Cycles repeat while they make progress, so a deep queue
// still drains fully; a cycle that commits nothing stops the loop (the
// cluster is effectively full for this queue shape).
func (c *Coordinator) TrySchedule() {
	for c.scheduleBatch() {
	}
}

// scheduleBatch runs one batch-scheduling cycle and reports whether any
// placement was committed. Placements are transactional per member: the
// database is only mutated after the agent's Launch succeeds, so a
// failing member leaves no stranded device reservation — its in-batch
// reservation dies with the batch and the job simply stays pending.
func (c *Coordinator) scheduleBatch() bool {
	if c.isStopped() || !c.Leading() {
		return false
	}
	if c.db.CountJobsInState(db.JobPending) == 0 {
		return false
	}
	now := c.clock.Now()

	// Assemble the batch: the head of the priority queue. Relaunch
	// metadata lives in the record itself, so jobs restored from a
	// snapshot + WAL are as schedulable as freshly submitted ones; only
	// legacy records without a spec are skipped.
	var (
		jobs  []db.JobRecord
		metas []*jobMeta
		reqs  []scheduler.Request
	)
	for _, job := range c.db.JobsInState(db.JobPending) {
		if len(reqs) >= c.cfg.BatchSize {
			break
		}
		meta := c.metaFor(job)
		if meta == nil {
			continue
		}
		jobs = append(jobs, job)
		metas = append(metas, meta)
		reqs = append(reqs, scheduler.Request{
			JobID:      job.ID,
			GPUMemMiB:  job.GPUMemMiB,
			Capability: api.CapabilityOf(job.CapabilityMajor, job.CapabilityMinor),
			Priority:   job.Priority,
			LongRunning: meta.training != nil &&
				meta.training.TotalSteps > 10000,
		})
	}
	if len(reqs) == 0 {
		return false
	}
	c.met.batchFill.Observe(float64(len(reqs)))

	// Real time, per decision: scheduling latency is a real cost, and
	// each member's own latency feeds the histogram so batching cannot
	// flatten the tail quantiles. The candidate pool comes from the
	// incrementally maintained cache, not a fresh store scan.
	results := c.sched.PlaceBatchPooled(reqs, c.pool, now)

	progressed := false
	for i, res := range results {
		c.schedLatency.Observe(res.Latency.Seconds())
		if res.Err != nil {
			continue // stays pending
		}
		// A requeued job resumes from its latest checkpoint, if any.
		var restoreSeq int
		var restoreStep int64
		if ck, cerr := c.ckpts.Latest(jobs[i].ID); cerr == nil {
			restoreSeq = ck.Seq
			restoreStep = ck.Progress.Step
		}
		if c.place(jobs[i], metas[i], res.Placement, restoreSeq, restoreStep, now) {
			progressed = true
		}
	}
	return progressed
}

// place launches a (possibly restored) job per a placement decision and
// reports whether the placement committed. On any failure nothing has
// been written to the database, so the decision rolls back to "job
// still pending" with no device held.
func (c *Coordinator) place(job db.JobRecord, meta *jobMeta, p scheduler.Placement, restoreSeq int, restoreStep int64, now time.Time) bool {
	h := c.handle(p.NodeID)
	if h == nil {
		return false
	}
	resp, err := h.Launch(api.LaunchRequest{
		Envelope: c.envelope(),
		JobID:    job.ID, ImageName: meta.image, Kind: meta.kind,
		Entrypoint: meta.entrypoint, GPUMemMiB: job.GPUMemMiB,
		CapabilityMajor: job.CapabilityMajor, CapabilityMinor: job.CapabilityMinor,
		CheckpointIntervalSec: meta.ckptSec,
		RestoreFromSeq:        restoreSeq, RestoreStep: restoreStep,
		Training: meta.training, SessionSeconds: meta.sessionSeconds,
		StoragePrefs: job.StoragePrefs,
	})
	if err != nil {
		// Node said no (paused, race on capacity): reflect reality and
		// leave the job pending.
		return false
	}

	_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) {
		j.State = db.JobRunning
		j.NodeID = p.NodeID
		j.DeviceID = resp.DeviceID
		j.ContainerID = resp.ContainerID
		j.PlacedAt = now
		if j.PreferredNode == "" {
			j.PreferredNode = p.NodeID
		}
		if j.StartedAt.IsZero() {
			j.StartedAt = now
		}
	})
	c.markDevice(p.NodeID, resp.DeviceID, true)
	c.db.RecordAllocation(db.AllocationRecord{
		JobID: job.ID, NodeID: p.NodeID, DeviceID: resp.DeviceID, Start: now,
	})
	if meta.kind == "interactive" {
		c.mu.Lock()
		c.interactiveCount++
		c.mu.Unlock()
	}
	c.bus.Publish(eventbus.Event{Type: eventbus.JobScheduled, Time: now,
		Job: job.ID, Node: p.NodeID,
		Detail: map[string]any{"device": resp.DeviceID, "reliability": p.Reliability}})
	return true
}

// --- Agent notifications (core implements agent.Notifier) ---

// JobUpdate receives job state changes from agents. Updates from a
// node the job is no longer placed on are dropped: after a partition,
// the old host may still be running a copy the platform has since
// migrated elsewhere, and letting its stale completion close the new
// placement's allocation would corrupt the resource view (heartbeat
// reconciliation kills such orphans).
func (c *Coordinator) JobUpdate(machineID, jobID string, state db.JobState, step int64) {
	if c.fence(0) != nil {
		// A deposed or standby coordinator must not resolve jobs; the
		// agent's report reaches the real leader through its endpoint
		// failover, and heartbeat anti-entropy covers a dropped one.
		return
	}
	now := c.clock.Now()
	switch state {
	case db.JobCompleted, db.JobFailed:
		// Idempotency pre-check, outside the record lock: a duplicate
		// delivery of a terminal report (the job already resolved, or
		// the record no longer points at the sender) must be a true
		// no-op — not even a no-change UpdateJob, which would still
		// advance the mutation sequence and re-stamp FinishedAt. A
		// duplicate racing the original on the concurrent HTTP path can
		// still slip past this read and reach UpdateJob; the in-lock
		// guards below keep the record correct there, at the cost of
		// one no-change mutation record.
		if cur, err := c.db.GetJob(jobID); err != nil ||
			cur.State == db.JobCompleted || cur.State == db.JobFailed ||
			cur.State == db.JobKilled ||
			(machineID != "" && cur.NodeID != machineID) {
			return
		}
		// The stale-node check also runs inside the record lock: on the
		// concurrent HTTP path the job may be requeued and re-placed
		// between the snapshot read above and this update, and a report
		// from the old host must lose that race, not resolve the new
		// copy.
		var nodeID, deviceID string
		applied := false
		err := c.db.UpdateJob(jobID, func(j *db.JobRecord) {
			if machineID != "" && j.NodeID != machineID {
				return
			}
			if j.State == db.JobCompleted || j.State == db.JobFailed || j.State == db.JobKilled {
				return
			}
			nodeID, deviceID = j.NodeID, j.DeviceID
			j.State = state
			j.FinishedAt = now
			applied = true
		})
		if err != nil || !applied {
			return
		}
		_ = c.db.CloseAllocation(jobID, now)
		c.freeDevice(nodeID, deviceID)
		evType := eventbus.JobCompleted
		if state == db.JobFailed {
			evType = eventbus.JobFailed
		}
		c.bus.Publish(eventbus.Event{Type: evType, Time: now, Job: jobID, Node: machineID,
			Detail: map[string]any{"step": step}})
		c.TrySchedule()
	}
}

// Departing receives announced departures from in-process agents.
func (c *Coordinator) Departing(machineID string, reason api.DepartReason) {
	_ = c.HandleDeparture(machineID, reason)
}

// --- Migration execution ---

// migrateJobsFrom relaunches every job that was on nodeID. All of the
// node's jobs are planned as one batch, so their restore transfers
// overlap on the LAN model.
func (c *Coordinator) migrateJobsFrom(nodeID string, reason migration.Reason) {
	now := c.clock.Now()
	jobs := c.db.JobsOnNode(nodeID)
	if len(jobs) == 0 {
		return
	}
	metas := make([]*jobMeta, len(jobs))
	planned := make([]db.JobRecord, 0, len(jobs))
	for _, job := range jobs {
		meta := c.metaFor(job)
		if meta == nil {
			continue
		}
		c.mu.Lock()
		meta.lostAt = now
		c.mu.Unlock()
		metas[len(planned)] = meta
		planned = append(planned, job)
		_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) { j.State = db.JobMigrating })
		_ = c.db.CloseAllocation(job.ID, now)
		c.mig.RecordAttempt(reason)
	}

	items := c.mig.PlanBatch(planned, c.db.ListNodes(), reason, now)
	for i, item := range items {
		if item.Err != nil {
			// No target now: requeue; a later TrySchedule will pick the
			// job up when capacity returns. Counted as a failure for the
			// immediate-migration statistic.
			c.mig.RecordFailure(reason)
			c.requeueFromCheckpoint(planned[i].ID, now)
			continue
		}
		c.executePlan(planned[i], metas[i], item.Plan, reason, now)
	}
}

// executePlan launches the displaced job on its planned target. The
// relaunch happens only after the checkpoint data has crossed the LAN
// (plan.TransferTime) — migration downtime is real time, not metadata.
func (c *Coordinator) executePlan(job db.JobRecord, meta *jobMeta, plan migration.Plan, reason migration.Reason, now time.Time) {
	if plan.TransferTime > 0 {
		c.clock.AfterFunc(plan.TransferTime, func() {
			c.finishMigration(job, meta, plan, reason)
		})
		return
	}
	c.finishMigration(job, meta, plan, reason)
}

// finishMigration performs the relaunch once restore data is in place.
func (c *Coordinator) finishMigration(job db.JobRecord, meta *jobMeta, plan migration.Plan, reason migration.Reason) {
	if c.isStopped() || !c.Leading() {
		// The transfer timer outlived the coordinator (kill/restart) or
		// its leadership (deposed mid-transfer): the successor's
		// RecoverState requeues this job.
		return
	}
	now := c.clock.Now()
	// The job may have been killed (or otherwise resolved) while its
	// checkpoint was in flight.
	cur, err := c.db.GetJob(job.ID)
	if err != nil || cur.State != db.JobMigrating {
		return
	}
	// The target may have degraded below the unhealthy threshold while
	// the checkpoint was in transit. Landing there would be a fresh
	// placement on a node the scheduler now excludes — requeue instead
	// and let the next batch pick a healthy target.
	if tgt, err := c.db.GetNode(plan.Placement.NodeID); err != nil ||
		tgt.HealthScore() < monitor.UnhealthyBelow {
		c.mig.RecordFailure(reason)
		c.requeueFromCheckpoint(job.ID, now)
		return
	}
	c.place(job, meta, plan.Placement, plan.RestoreSeq, plan.RestoreStep, now)

	after, err := c.db.GetJob(job.ID)
	if err != nil || after.State != db.JobRunning {
		c.mig.RecordFailure(reason)
		c.requeueFromCheckpoint(job.ID, now)
		return
	}
	_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) { j.Migrations++ })
	c.mig.RecordSuccess(reason, 0, plan.TransferTime)
	evType := eventbus.JobMigrated
	if reason == migration.ReasonMigrateBack {
		evType = eventbus.JobMigratedBack
	}
	c.bus.Publish(eventbus.Event{Type: evType, Time: now, Job: job.ID,
		Node: plan.Placement.NodeID,
		Detail: map[string]any{
			"from": plan.From, "restore_step": plan.RestoreStep,
			"transfer_bytes": plan.TransferBytes, "reason": string(reason),
		}})
}

// requeueFromCheckpoint returns a displaced job to the pending queue; it
// keeps its checkpoint state, so the next placement resumes correctly.
func (c *Coordinator) requeueFromCheckpoint(jobID string, now time.Time) {
	_ = c.db.UpdateJob(jobID, func(j *db.JobRecord) {
		j.State = db.JobPending
		j.NodeID = ""
		j.DeviceID = ""
	})
	c.bus.Publish(eventbus.Event{Type: eventbus.JobRequeued, Time: now, Job: jobID})
}

// MigrateBack moves jobs that prefer nodeID (their original home) back
// onto it, checkpointing them at their current host first.
func (c *Coordinator) MigrateBack(nodeID string) {
	now := c.clock.Now()
	c.mu.Lock()
	wasTemporary := c.temporary[nodeID]
	delete(c.temporary, nodeID)
	c.mu.Unlock()
	if !wasTemporary {
		return
	}
	for _, job := range c.db.ListJobs() {
		if job.PreferredNode != nodeID || job.NodeID == nodeID || job.State != db.JobRunning {
			continue
		}
		meta := c.metaFor(job)
		if meta == nil || meta.training == nil {
			continue // only stateful batch jobs migrate back
		}
		cur := c.handle(job.NodeID)
		if cur == nil {
			continue
		}
		ck, err := cur.Checkpoint(job.ID, true)
		if err != nil {
			continue
		}
		c.mig.RecordAttempt(migration.ReasonMigrateBack)
		plan, err := c.mig.Plan(job, c.db.ListNodes(), migration.ReasonMigrateBack, now)
		if err != nil || plan.Placement.NodeID != nodeID {
			c.mig.RecordFailure(migration.ReasonMigrateBack)
			continue
		}
		if err := cur.Kill(api.KillRequest{Envelope: c.envelope(), JobID: job.ID}); err != nil {
			c.mig.RecordFailure(migration.ReasonMigrateBack)
			continue
		}
		c.freeDevice(job.NodeID, job.DeviceID)
		_ = c.db.CloseAllocation(job.ID, now)
		_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) { j.State = db.JobMigrating })
		plan.RestoreSeq = ck.Seq
		plan.RestoreStep = ck.Step
		c.executePlan(job, meta, plan, migration.ReasonMigrateBack, now)
	}
}

// --- helpers ---

// metaFor returns the relaunch metadata for a job, rebuilding (and
// caching) it from the record's persisted spec when the in-memory entry
// is missing — the case for every job that crossed a coordinator
// restart. Nil means the record carries no spec (a legacy snapshot) and
// the job cannot be relaunched.
func (c *Coordinator) metaFor(job db.JobRecord) *jobMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m := c.meta[job.ID]; m != nil {
		return m
	}
	if job.ImageName == "" {
		return nil
	}
	m := &jobMeta{
		image:          job.ImageName,
		kind:           job.Kind,
		entrypoint:     job.Entrypoint,
		ckptSec:        job.CheckpointIntervalSec,
		training:       job.Training,
		sessionSeconds: job.SessionSeconds,
	}
	c.meta[job.ID] = m
	return m
}

func (c *Coordinator) handle(nodeID string) AgentHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.agents[nodeID]
}

func (c *Coordinator) markDevice(nodeID, deviceID string, allocated bool) {
	_ = c.db.UpdateNode(nodeID, func(n *db.NodeRecord) {
		for i := range n.GPUs {
			if n.GPUs[i].DeviceID == deviceID {
				n.GPUs[i].Allocated = allocated
			}
		}
	})
}

func (c *Coordinator) freeDevice(nodeID, deviceID string) {
	if nodeID == "" || deviceID == "" {
		return
	}
	c.markDevice(nodeID, deviceID, false)
}

// LocalAgent adapts an in-process agent to the AgentHandle interface.
type LocalAgent struct {
	// A is the wrapped agent.
	A interface {
		Launch(api.LaunchRequest) (api.LaunchResponse, error)
		KillJob(api.KillRequest) error
		CheckpointNow(jobID string, incremental bool) (api.CheckpointResponse, error)
	}
}

// Launch implements AgentHandle.
func (l LocalAgent) Launch(req api.LaunchRequest) (api.LaunchResponse, error) {
	return l.A.Launch(req)
}

// Kill implements AgentHandle.
func (l LocalAgent) Kill(req api.KillRequest) error { return l.A.KillJob(req) }

// Checkpoint implements AgentHandle.
func (l LocalAgent) Checkpoint(jobID string, incremental bool) (api.CheckpointResponse, error) {
	return l.A.CheckpointNow(jobID, incremental)
}
