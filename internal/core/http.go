package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"

	"gpunion/internal/agent"
	"gpunion/internal/api"
)

// maxAggregatedBody bounds one aggregated-batch request body: the
// entry caps in api already bound the decoded size, this bounds what
// the decoder is even offered.
const maxAggregatedBody = 64 << 20

// HandleFactory builds an AgentHandle for a newly registered node's
// address. The default dials the agent's REST API; tests substitute
// in-process handles.
type HandleFactory func(addr string) AgentHandle

// DefaultHandleFactory returns HTTP handles.
func DefaultHandleFactory(addr string) AgentHandle {
	return agent.NewClient(addr)
}

// Handler returns the coordinator's REST API.
func (c *Coordinator) Handler(factory HandleFactory) http.Handler {
	if factory == nil {
		factory = DefaultHandleFactory
	}
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req api.RegisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Register(req, factory(req.Addr))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req api.HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Heartbeat(req)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/aggregated", func(w http.ResponseWriter, r *http.Request) {
		// Aggregated batches arrive in the compact binary format
		// (api.EncodeAggregatedBeat), not JSON: the whole point of the
		// tier is to keep the coordinator-facing hop small.
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxAggregatedBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("core: reading aggregated batch: %w", err))
			return
		}
		batch, err := api.DecodeAggregatedBeat(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := c.IngestAggregated(batch)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/depart", func(w http.ResponseWriter, r *http.Request) {
		var req api.DepartRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if err := c.Depart(req); err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, ErrBadToken) {
				code = http.StatusUnauthorized
			}
			writeError(w, code, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/jobupdate", func(w http.ResponseWriter, r *http.Request) {
		var req api.JobUpdateRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		c.JobUpdate(req.MachineID, req.JobID, req.State, req.Step)
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req api.SubmitJobRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		id, err := c.SubmitJob(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, api.SubmitJobResponse{JobID: id})
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Jobs())
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.JobStatus(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("POST /v1/jobs/{id}/kill", func(w http.ResponseWriter, r *http.Request) {
		if err := c.KillJob(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Nodes())
	})

	mux.HandleFunc("GET /v1/health/nodes", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.NodeHealths())
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Derived gauges (job states, leadership, pool cache,
		// checkpoint verification) are recomputed per scrape.
		c.refreshGauges()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = c.metrics.WriteText(w)
	})

	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = c.trace.ExportJSON(w)
	})

	if c.cfg.EnableProfiling {
		// Mount pprof explicitly instead of importing its DefaultServeMux
		// side effects: profiling stays opt-in per coordinator.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}

	// The web interface: a read-only status page for campus users.
	mux.HandleFunc("GET /{$}", c.Dashboard())

	return mux
}

func decodeJSON(w http.ResponseWriter, r *http.Request, out any) bool {
	if err := json.NewDecoder(r.Body).Decode(out); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("core: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Code: code, Message: err.Error()})
}
