package core

import (
	"testing"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

func TestJobsListingNewestFirst(t *testing.T) {
	r := newRig(t, 10*time.Second)
	r.addNode("n1", gpu.RTX3090, gpu.RTX3090)
	id1 := submitTraining(t, r, workload.SmallCNN, 0)
	id2 := submitTraining(t, r, workload.SmallCNN, 0)

	jobs := r.coord.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	if jobs[0].JobID != id2 || jobs[1].JobID != id1 {
		t.Fatalf("order = %s, %s — want newest first", jobs[0].JobID, jobs[1].JobID)
	}
}

func TestJobsEndpointOverHTTP(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090)
	spec := workload.SmallCNN
	if _, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	}); err != nil {
		t.Fatal(err)
	}
	jobs, err := r.client.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != db.JobRunning {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestInteractiveSessionMigratesOnDeparture(t *testing.T) {
	// "rapid migration for interactive sessions" (§2): a session
	// displaced by a departure restarts on another node — stateless
	// requeue, no checkpoint needed.
	r := newRig(t, 10*time.Second)
	ag1 := r.addNode("n1", gpu.RTX3090)
	r.addNode("n2", gpu.RTX3090)
	id, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "student", Kind: "interactive", ImageName: "gpunion/jupyter-dl:latest",
		Priority: 10, GPUMemMiB: 8192, SessionSeconds: 7200,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.coord.JobStatus(id)
	if st.NodeID != "n1" {
		t.Skipf("session placed on %s; scenario covered symmetrically", st.NodeID)
	}
	r.clock.Advance(time.Minute)
	ag1.Depart(api.DepartScheduled, 0)

	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID != "n2" {
		t.Fatalf("session after departure: %+v, want running on n2", st)
	}
	if len(r.ags["n2"].Status().RunningJobs) != 1 {
		t.Fatal("session container not running on n2")
	}
}
