package core

import (
	"sort"

	"gpunion/internal/api"
	"gpunion/internal/db"
)

// Aggregated heartbeat ingress: the coordinator-side half of the
// rack/zone aggregation tier (internal/aggregator). An aggregator acks
// steady-state no-op beats locally and forwards one AggregatedBeat per
// flush window; the coordinator replays the roll-up through the exact
// same per-beat path direct ingestion uses.
//
// Equivalence by construction: a folded delta is, by the aggregator's
// fold contract, a beat whose report was empty — no telemetry, no
// running jobs, no health events, not paused. IngestAggregated
// reconstructs precisely that request (same machine, token and
// sequence) and hands it to heartbeatAt with the aggregator's receipt
// time, so the store mutations, monitor updates, dedup high-water
// marks and reconciliation decisions are the ones direct ingestion of
// the original beat would have produced. Pass-through beats are the
// originals and replay verbatim. The per-node BeatSeq guard makes the
// whole batch idempotent: a replayed or partially re-sent window folds
// to a no-op, which is also why a batch aborted mid-way by a fencing
// error is safe to retry against the new leader.

// IngestAggregated processes one aggregator flush window. Pass-through
// beats run first, in receipt order: within a window they carry higher
// sequences than any delta folded before them for the same node, and a
// delta that lost the race (its window flushed after a newer direct or
// pass-through beat) is absorbed by the sequence guard. Per-node
// directives — re-registration demands, nodes whose beats must stop
// folding — fan back through the response for the aggregator to relay.
func (c *Coordinator) IngestAggregated(batch api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	if err := c.fence(batch.LeaderEpoch); err != nil {
		return api.AggregatedBeatResponse{}, err
	}
	c.met.aggBatches.Inc()
	resp := api.AggregatedBeatResponse{Acknowledged: true}
	reregister := make(map[string]bool)
	sendFull := make(map[string]bool)

	for _, pb := range batch.Beats {
		// Each forwarded beat keeps its own envelope: an agent that
		// observed a newer leader than its aggregator must still depose a
		// stale coordinator, exactly as on the direct path. A fencing
		// failure aborts the window; the sequence guard absorbs the
		// already-applied prefix when the aggregator retries.
		if err := c.fence(pb.Beat.LeaderEpoch); err != nil {
			return api.AggregatedBeatResponse{}, err
		}
		c.met.aggPassthru.Inc()
		hr, err := c.heartbeatAt(pb.Beat, pb.At)
		if err != nil {
			// Bad token or similar per-beat rejection: the aggregator must
			// stop folding this node so the agent sees the error directly.
			sendFull[pb.Beat.MachineID] = true
			continue
		}
		if hr.Reregister {
			reregister[pb.Beat.MachineID] = true
		}
	}

	// Deltas in deterministic order; the aggregator sorts them, but the
	// coordinator does not trust the wire.
	deltas := make([]api.AggBeatDelta, len(batch.Deltas))
	copy(deltas, batch.Deltas)
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].NodeID < deltas[j].NodeID })
	for _, d := range deltas {
		c.met.aggDeltas.Inc()
		// A folded delta is evidence of past steady-state liveness, not
		// a fresh claim of presence. If the node's membership
		// transitioned while the delta sat in its window — it departed,
		// was swept unreachable, or its record is gone — replaying the
		// delta would resurrect the node on stale evidence no direct
		// deployment would accept at this point (the direct analogue,
		// the coalescing buffer, drops exactly these advances on
		// departure). Bounce the node to a fresh registration instead.
		if rec, gerr := c.db.GetNode(d.NodeID); gerr != nil ||
			rec.Status == db.NodeDeparted || rec.Status == db.NodeUnreachable {
			reregister[d.NodeID] = true
			continue
		}
		hr, err := c.heartbeatAt(api.HeartbeatRequest{
			Envelope:  api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: batch.LeaderEpoch},
			MachineID: d.NodeID,
			Token:     d.Token,
			BeatSeq:   d.BeatSeq,
		}, d.At)
		if err != nil {
			sendFull[d.NodeID] = true
			continue
		}
		if hr.Reregister {
			reregister[d.NodeID] = true
		}
	}

	for id := range reregister {
		resp.Reregister = append(resp.Reregister, id)
	}
	for id := range sendFull {
		resp.SendFull = append(resp.SendFull, id)
	}
	sort.Strings(resp.Reregister)
	sort.Strings(resp.SendFull)
	resp.LeaderEpoch = c.Epoch()
	return resp, nil
}
