package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/obs"
)

// Client talks to a coordinator over HTTP. It serves two callers:
// user tooling (submit, status, nodes) and agent daemons (register,
// heartbeat, depart, job updates). It implements agent.Notifier so a
// daemonised agent can report through it directly.
type Client struct {
	// BaseURL is the coordinator's address.
	BaseURL string
	// HTTPClient defaults to a 10 s timeout client.
	HTTPClient *http.Client

	mu    sync.Mutex
	token string
}

// NewClient creates a coordinator client.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 10 * time.Second},
	}
}

// SetToken installs the node credential for authenticated calls.
func (c *Client) SetToken(tok string) {
	c.mu.Lock()
	c.token = tok
	c.mu.Unlock()
}

// Token returns the stored credential.
func (c *Client) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Register joins the platform; the returned token is stored on the
// client for subsequent authenticated calls.
func (c *Client) Register(req api.RegisterRequest) (api.RegisterResponse, error) {
	var resp api.RegisterResponse
	if err := c.post("/v1/register", req, &resp); err != nil {
		return resp, err
	}
	c.SetToken(resp.Token)
	return resp, nil
}

// Heartbeat sends one status update.
func (c *Client) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	if req.Token == "" {
		req.Token = c.Token()
	}
	var resp api.HeartbeatResponse
	err := c.post("/v1/heartbeat", req, &resp)
	return resp, err
}

// IngestAggregated forwards one aggregator flush window in the compact
// binary batch format. It implements aggregator.Upstream, so a
// rack-scoped aggregator daemon can point straight at a coordinator.
func (c *Client) IngestAggregated(batch api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	var out api.AggregatedBeatResponse
	raw, err := api.EncodeAggregatedBeat(batch)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/aggregated", bytes.NewReader(raw))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return out, fmt.Errorf("core: POST /v1/aggregated: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return out, readAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("core: decoding response: %w", err)
	}
	return out, nil
}

// Depart announces a voluntary departure.
func (c *Client) Depart(machineID string, reason api.DepartReason, graceSeconds int) error {
	return c.post("/v1/depart", api.DepartRequest{
		MachineID: machineID, Token: c.Token(),
		Reason: reason, GraceSeconds: graceSeconds,
	}, nil)
}

// SubmitJob submits a user job.
func (c *Client) SubmitJob(req api.SubmitJobRequest) (string, error) {
	var resp api.SubmitJobResponse
	if err := c.post("/v1/jobs", req, &resp); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// JobStatus fetches one job's state.
func (c *Client) JobStatus(jobID string) (api.JobStatus, error) {
	var st api.JobStatus
	err := c.get("/v1/jobs/"+jobID, &st)
	return st, err
}

// Jobs lists all jobs' statuses, newest first.
func (c *Client) Jobs() ([]api.JobStatus, error) {
	var jobs []api.JobStatus
	err := c.get("/v1/jobs", &jobs)
	return jobs, err
}

// KillJob terminates a job platform-wide.
func (c *Client) KillJob(jobID string) error {
	return c.post("/v1/jobs/"+jobID+"/kill", nil, nil)
}

// Nodes lists registered nodes.
func (c *Client) Nodes() ([]api.NodeSummary, error) {
	var nodes []api.NodeSummary
	err := c.get("/v1/nodes", &nodes)
	return nodes, err
}

// NodeHealths lists every node's health standing and recent events.
func (c *Client) NodeHealths() ([]api.NodeHealthSummary, error) {
	var out []api.NodeHealthSummary
	err := c.get("/v1/health/nodes", &out)
	return out, err
}

// MetricsText fetches the coordinator's metrics in the Prometheus text
// exposition format.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("core: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", readAPIError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("core: reading metrics: %w", err)
	}
	return string(raw), nil
}

// TraceExport fetches the coordinator's flight-recorder contents.
func (c *Client) TraceExport() (obs.Export, error) {
	var exp obs.Export
	err := c.get("/v1/trace", &exp)
	return exp, err
}

// JobUpdate implements agent.Notifier over HTTP.
func (c *Client) JobUpdate(machineID, jobID string, state db.JobState, step int64) {
	_ = c.post("/v1/jobupdate", api.JobUpdateRequest{
		MachineID: machineID, Token: c.Token(),
		JobID: jobID, State: state, Step: step,
	}, nil)
}

// Departing implements agent.Notifier over HTTP.
func (c *Client) Departing(machineID string, reason api.DepartReason) {
	_ = c.Depart(machineID, reason, 0)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("core: encoding request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(http.MethodPost, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("core: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return readAPIError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("core: decoding response: %w", err)
		}
	}
	return nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("core: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return readAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func readAPIError(resp *http.Response) error {
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Message != "" {
		return apiErr
	}
	return fmt.Errorf("core: HTTP %d", resp.StatusCode)
}
