package core

import (
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/netsim"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// netRig is a rig whose coordinator models LAN transfer timing, so
// migrations have real (simulated) downtime.
type netRig struct {
	clock *simclock.Sim
	coord *Coordinator
	ckpts *checkpoint.Store
	ags   map[string]*agent.Agent
}

func newNetRig(t *testing.T) *netRig {
	t.Helper()
	clock := simclock.NewSim(t0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	net := netsim.New(10 * netsim.Gbps)
	net.AddNode(netsim.NodeLink{Name: "storage", Access: 10 * netsim.Gbps, Latency: 100 * time.Microsecond})
	for _, id := range []string{"n1", "n2"} {
		net.AddNode(netsim.NodeLink{Name: id, Access: netsim.Gbps, Latency: 250 * time.Microsecond})
	}
	coord, err := New(Config{
		HeartbeatInterval: 10 * time.Second,
		Net:               net,
		StorageNode:       "storage",
	}, clock, db.New(0), ckpts, eventbus.New(512))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)

	r := &netRig{clock: clock, coord: coord, ckpts: ckpts, ags: map[string]*agent.Agent{}}
	for _, id := range []string{"n1", "n2"} {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"}, clock, rt, ckpts, nil, coord)
		t.Cleanup(ag.Stop)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), LocalAgent{A: ag})
		if err != nil {
			t.Fatal(err)
		}
		ag.SetToken(resp.Token)
		r.ags[id] = ag
		var beat func()
		beat = func() {
			if !ag.Departed() {
				_, _ = coord.Heartbeat(ag.HeartbeatRequest())
			}
			clock.AfterFunc(resp.HeartbeatInterval, beat)
		}
		clock.AfterFunc(resp.HeartbeatInterval, beat)
	}
	return r
}

// bigStateSpec trains with ~2 GB of state so restore transfers take
// seconds on the modelled 1 Gbps links.
func bigStateSpec() workload.TrainingSpec {
	spec := workload.SmallTransformer
	spec.StateBytes = 2_000_000_000
	return spec
}

func TestMigrationWaitsForCheckpointTransfer(t *testing.T) {
	r := newNetRig(t)
	spec := bigStateSpec()
	id, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 60, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.coord.JobStatus(id)
	home := st.NodeID
	r.clock.Advance(2 * time.Minute) // at least one checkpoint

	r.ags[home].Depart(api.DepartScheduled, time.Minute)

	// Immediately after the departure the job is still migrating: its
	// ~2 GB chain is crossing the LAN (≈16 s at 1 Gbps).
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobMigrating {
		t.Fatalf("state right after departure = %s, want migrating", st.State)
	}
	// After the transfer window it runs on the other node.
	r.clock.Advance(time.Minute)
	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobRunning || st.NodeID == home {
		t.Fatalf("after transfer: %+v", st)
	}
}

func TestKillWhileCheckpointInFlight(t *testing.T) {
	r := newNetRig(t)
	spec := bigStateSpec()
	id, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 60, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.coord.JobStatus(id)
	home := st.NodeID
	r.clock.Advance(2 * time.Minute)

	r.ags[home].Depart(api.DepartScheduled, time.Minute)
	// Mid-transfer, the user kills the job.
	if err := r.coord.KillJob(id); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(time.Minute) // the delayed relaunch fires — and must stand down

	st, _ = r.coord.JobStatus(id)
	if st.State != db.JobKilled {
		t.Fatalf("state = %s, want killed to stick through the in-flight migration", st.State)
	}
	for id2, ag := range r.ags {
		if n := len(ag.Status().RunningJobs); n != 0 {
			t.Fatalf("node %s runs %d jobs after the kill", id2, n)
		}
	}
}

func TestMigrationDowntimeRecordedFromTransfer(t *testing.T) {
	r := newNetRig(t)
	spec := bigStateSpec()
	_, err := r.coord.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, CheckpointIntervalSec: 60, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	var home string
	for id, ag := range r.ags {
		if len(ag.Status().RunningJobs) == 1 {
			home = id
		}
	}
	r.clock.Advance(2 * time.Minute)
	r.ags[home].Depart(api.DepartScheduled, time.Minute)
	r.clock.Advance(time.Minute)

	stats := r.coord.Migration().Stats()
	// A ~2 GB chain at 1 Gbps is ≥ 16 s of downtime.
	if d := stats.MeanDowntime("scheduled"); d < 10*time.Second {
		t.Fatalf("mean downtime = %v, want the transfer to dominate", d)
	}
}
