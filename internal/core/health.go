package core

import (
	"strconv"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/migration"
	"gpunion/internal/monitor"
	"gpunion/internal/obs"
)

// Gray-failure handling: agents report typed health events (XID errors,
// thermal/power excursions, throughput slowdowns) on their heartbeats;
// the coordinator folds each batch into a per-node health score that is
// persisted through the store's mutation stream (MutNodeHealth), so the
// score survives crash recovery and standby promotion exactly like any
// other record state. The scheduler consumes the score two ways:
// degraded nodes rank lower in every placement decision, and nodes
// below monitor.UnhealthyBelow are excluded from the candidate set
// entirely. Crossing that threshold additionally triggers a predictive
// checkpoint-then-migrate drain — the node is still alive, so each job
// checkpoints in place and resumes elsewhere with no lost work, unlike
// the emergency path that fires only after the node has gone silent.

// maxRecentHealth bounds the per-node diagnostic ring served by the
// health endpoint.
const maxRecentHealth = 16

// healthDecayCeiling stops the sweep's decay records once a node's
// score has recovered this close to fully healthy — the asymptotic
// tail is not worth a WAL frame per sweep.
const healthDecayCeiling = 0.999

// ingestHealth folds one beat's health events into the node's persisted
// score. The fold runs inside the store's critical section (see
// db.Store.RecordHealth), so concurrent beats serialize with correct
// previous values; the committed mutation carries both the resulting
// score (replayed verbatim — recovery is byte-equal, no float
// re-derivation) and the events (audit evidence the
// health-score-consistent invariant refolds).
func (c *Coordinator) ingestHealth(nodeID string, events []gpu.HealthEvent, now time.Time) {
	before := 1.0
	score, ok := c.db.RecordHealth(nodeID, now, events, func(prev float64, prevAt time.Time) float64 {
		if !prevAt.IsZero() {
			before = prev
		}
		return monitor.FoldHealth(prev, prevAt, now, events, c.healthParams)
	})
	if !ok {
		return // node gone, or a fold at this instant already committed
	}
	for _, ev := range events {
		c.met.observeHealthEvent(string(ev.Kind), string(ev.Severity))
	}
	c.met.setNodeHealth(nodeID, score)
	c.rememberHealth(nodeID, events)
	if before >= monitor.UnhealthyBelow && score < monitor.UnhealthyBelow {
		c.trace.Record(obs.KindHealthDegraded, "", nodeID, map[string]string{
			"score":  strconv.FormatFloat(score, 'f', 4, 64),
			"events": strconv.Itoa(len(events)),
		})
		c.drainUnhealthy(nodeID, now)
	}
}

// rememberHealth appends events to the node's diagnostic ring, keeping
// only the most recent maxRecentHealth entries.
func (c *Coordinator) rememberHealth(nodeID string, events []gpu.HealthEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.recentHealth == nil {
		c.recentHealth = make(map[string][]gpu.HealthEvent)
	}
	ring := append(c.recentHealth[nodeID], events...)
	if len(ring) > maxRecentHealth {
		ring = append([]gpu.HealthEvent(nil), ring[len(ring)-maxRecentHealth:]...)
	}
	c.recentHealth[nodeID] = ring
}

// drainUnhealthy predictively moves work off a live node whose health
// score crossed below the unhealthy threshold. Each running job is
// checkpointed in place — the whole point of acting before the node
// dies is that its devices still work — then killed, closed out, and
// relaunched on a planned target, reusing the standard migration
// machinery. A job with no target stays where it is: a degraded node
// beats no node, and the sweep backstop retries while the node remains
// unhealthy. New placements never land here meanwhile — the scheduler
// excludes nodes below the threshold.
func (c *Coordinator) drainUnhealthy(nodeID string, now time.Time) {
	h := c.handle(nodeID)
	if h == nil {
		return
	}
	for _, job := range c.db.JobsOnNode(nodeID) {
		if job.State != db.JobRunning {
			continue
		}
		meta := c.metaFor(job)
		if meta == nil {
			continue
		}
		// Checkpoint at the source while it is still able; a failing
		// checkpoint (the gray failure biting) falls back to the last
		// durable generation.
		restoreSeq, restoreStep := 0, int64(0)
		if ck, err := h.Checkpoint(job.ID, true); err == nil {
			restoreSeq, restoreStep = ck.Seq, ck.Step
		} else if c.ckpts != nil {
			if latest, lerr := c.ckpts.Latest(job.ID); lerr == nil {
				restoreSeq, restoreStep = latest.Seq, latest.Progress.Step
			}
		}
		c.mig.RecordAttempt(migration.ReasonPredictive)
		plan, err := c.mig.Plan(job, c.db.ListNodes(), migration.ReasonPredictive, now)
		if err != nil {
			c.mig.RecordFailure(migration.ReasonPredictive)
			continue
		}
		if err := h.Kill(api.KillRequest{Envelope: c.envelope(), JobID: job.ID}); err != nil {
			c.mig.RecordFailure(migration.ReasonPredictive)
			continue
		}
		c.freeDevice(job.NodeID, job.DeviceID)
		_ = c.db.CloseAllocation(job.ID, now)
		_ = c.db.UpdateJob(job.ID, func(j *db.JobRecord) { j.State = db.JobMigrating })
		plan.RestoreSeq, plan.RestoreStep = restoreSeq, restoreStep
		c.trace.Record(obs.KindPredictiveMigrate, job.ID, nodeID, map[string]string{
			"to":           plan.Placement.NodeID,
			"restore_step": strconv.FormatInt(plan.RestoreStep, 10),
		})
		c.executePlan(job, meta, plan, migration.ReasonPredictive, now)
	}
}

// sweepHealth is the periodic half of the health pipeline, run from
// Sweep: scores only move on mutations, so recovery toward healthy is
// driven by empty-events decay folds — WAL-logged like any fold, so
// the invariant can reproduce them — and nodes that crossed the
// threshold while drain targets were scarce are retried.
func (c *Coordinator) sweepHealth(now time.Time) {
	// Decay folds stamp a hair before now: the sweep and the agents'
	// beats share the heartbeat cadence, so a decay fold at exactly now
	// would advance HealthAt past a beat-carried event fold arriving at
	// the same instant, and the store's forward-only guard would drop
	// the events. The backstop must never pre-empt fresher signal.
	decayAt := now.Add(-time.Millisecond)
	for _, n := range c.db.ListNodes() {
		if n.HealthAt.IsZero() || (n.Status != db.NodeActive && n.Status != db.NodePaused) {
			continue
		}
		if n.Health < healthDecayCeiling && n.HealthAt.Before(decayAt) {
			score, ok := c.db.RecordHealth(n.ID, decayAt, nil, func(prev float64, prevAt time.Time) float64 {
				return monitor.FoldHealth(prev, prevAt, decayAt, nil, c.healthParams)
			})
			if ok {
				c.met.setNodeHealth(n.ID, score)
				n.Health = score
			}
		}
		if n.Status == db.NodeActive && n.HealthScore() < monitor.UnhealthyBelow {
			c.drainUnhealthy(n.ID, now)
		}
	}
}

// NodeHealths reports every node's current health standing plus its
// recent ingested events (the gpuctl health view).
func (c *Coordinator) NodeHealths() []api.NodeHealthSummary {
	recs := c.db.ListNodes()
	out := make([]api.NodeHealthSummary, 0, len(recs))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range recs {
		out = append(out, api.NodeHealthSummary{
			NodeID:       n.ID,
			Status:       n.Status,
			Score:        n.HealthScore(),
			UpdatedAt:    n.HealthAt,
			Unhealthy:    n.HealthScore() < monitor.UnhealthyBelow,
			RecentEvents: append([]gpu.HealthEvent(nil), c.recentHealth[n.ID]...),
		})
	}
	return out
}
