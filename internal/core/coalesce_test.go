package core

import (
	"sync"
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
)

// beatRig is a coordinator with silent agents: nodes are registered but
// never beat on their own, so each test delivers exactly the heartbeats
// it wants to reason about.
type beatRig struct {
	t      *testing.T
	clock  *simclock.Sim
	store  db.Store
	coord  *Coordinator
	ckpts  *checkpoint.Store
	tokens map[string]string
	epochs map[string]uint64
	seqs   map[string]uint64
	ags    map[string]*agent.Agent
}

func newBeatRig(t *testing.T, interval time.Duration, store db.Store) *beatRig {
	t.Helper()
	clock := simclock.NewSim(t0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord, err := New(Config{HeartbeatInterval: interval}, clock, store, ckpts, eventbus.New(1024))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	return &beatRig{t: t, clock: clock, store: store, coord: coord, ckpts: ckpts,
		tokens: make(map[string]string), epochs: make(map[string]uint64),
		seqs: make(map[string]uint64), ags: make(map[string]*agent.Agent)}
}

func (b *beatRig) addSilentNode(id string) {
	b.t.Helper()
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
	ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"}, b.clock, rt, b.ckpts, nil, NopCoordNotifier{})
	b.t.Cleanup(ag.Stop)
	resp, err := b.coord.Register(ag.RegisterRequest("inproc://"+id, 1<<30), LocalAgent{A: ag})
	if err != nil {
		b.t.Fatal(err)
	}
	b.tokens[id], b.epochs[id], b.ags[id] = resp.Token, resp.LeaderEpoch, ag
}

// beatReq builds the next in-sequence heartbeat for the node: empty
// telemetry, no running jobs — a pure liveness report.
func (b *beatRig) beatReq(id string) api.HeartbeatRequest {
	b.seqs[id]++
	return api.HeartbeatRequest{
		Envelope:  api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: b.epochs[id]},
		MachineID: id, Token: b.tokens[id], BeatSeq: b.seqs[id],
	}
}

func (b *beatRig) beat(id string) api.HeartbeatResponse {
	b.t.Helper()
	resp, err := b.coord.Heartbeat(b.beatReq(id))
	if err != nil {
		b.t.Fatal(err)
	}
	return resp
}

// guardEntries reads the dedup map and coalescing buffer under the lock.
func guardEntries(c *Coordinator) (seq map[string]uint64, buffered map[string]time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq = make(map[string]uint64, len(c.beatSeq))
	for k, v := range c.beatSeq {
		seq[k] = v
	}
	buffered = make(map[string]time.Time, len(c.beats))
	for k, v := range c.beats {
		buffered[k] = v
	}
	return seq, buffered
}

// TestBeatSeqPrunedOnDepartureAndSweep: the dedup high-water mark and
// any buffered beat die with the membership — an announced departure
// and a sweep-dead verdict must both prune their node's entries, or the
// maps grow one entry per churned node forever.
func TestBeatSeqPrunedOnDepartureAndSweep(t *testing.T) {
	b := newBeatRig(t, time.Minute, db.New(0))
	b.addSilentNode("n1")
	b.addSilentNode("n2")
	b.clock.Advance(10 * time.Second)
	b.beat("n1")
	b.beat("n2")
	seq, buffered := guardEntries(b.coord)
	if seq["n1"] != 1 || seq["n2"] != 1 {
		t.Fatalf("guard not armed: %v", seq)
	}
	if len(buffered) != 2 {
		t.Fatalf("no-op beats not buffered: %v", buffered)
	}

	if err := b.coord.HandleDeparture("n1", api.DepartScheduled); err != nil {
		t.Fatal(err)
	}
	seq, buffered = guardEntries(b.coord)
	if _, ok := seq["n1"]; ok {
		t.Fatal("departure left n1 in the dedup map")
	}
	if _, ok := buffered["n1"]; ok {
		t.Fatal("departure left n1's beat in the coalescing buffer")
	}
	if seq["n2"] != 1 {
		t.Fatalf("departure of n1 disturbed n2's entry: %v", seq)
	}

	// n2 falls silent; the sweep declares it dead and must prune too.
	b.clock.Advance(5 * time.Minute)
	rec, err := b.store.GetNode("n2")
	if err != nil || rec.Status != db.NodeUnreachable {
		t.Fatalf("n2 = %+v, %v (want unreachable)", rec, err)
	}
	seq, buffered = guardEntries(b.coord)
	if _, ok := seq["n2"]; ok {
		t.Fatal("sweep left n2 in the dedup map")
	}
	if len(buffered) != 0 {
		t.Fatalf("sweep left buffered beats: %v", buffered)
	}
}

// TestReplayedBeatFromSweptNodeReregisters: a replay is only
// acknowledged while the node is a live member. If the node was swept
// dead since the original beat, the replay must answer Reregister —
// replays are side-effect-free and cannot re-adopt the node, so acking
// would silence the agent's retry loop against a dead membership.
func TestReplayedBeatFromSweptNodeReregisters(t *testing.T) {
	b := newBeatRig(t, time.Minute, db.New(0))
	b.addSilentNode("n1")
	b.clock.Advance(10 * time.Second)
	req := b.beatReq("n1")
	if resp, err := b.coord.Heartbeat(req); err != nil || !resp.Acknowledged {
		t.Fatalf("original beat = %+v, %v", resp, err)
	}
	// Silence until the sweep declares the node dead.
	b.clock.Advance(5 * time.Minute)
	if rec, err := b.store.GetNode("n1"); err != nil || rec.Status != db.NodeUnreachable {
		t.Fatalf("n1 = %+v, %v (want unreachable)", rec, err)
	}
	// Re-arm the guard entry the sweep pruned: this is the replay that
	// raced the sweep — its sequence is claimed, the node is dead.
	b.coord.mu.Lock()
	b.coord.beatSeq["n1"] = req.BeatSeq
	b.coord.mu.Unlock()
	resp, err := b.coord.Heartbeat(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Acknowledged || !resp.Reregister {
		t.Fatalf("replay from swept-dead node = %+v, want Reregister", resp)
	}
}

// mutationLog records the store's typed-mutation stream for a test.
type mutationLog struct {
	mu   sync.Mutex
	muts []db.Mutation
}

func (l *mutationLog) observe(m db.Mutation) {
	l.mu.Lock()
	l.muts = append(l.muts, m)
	l.mu.Unlock()
}

func (l *mutationLog) byType(t db.MutationType) []db.Mutation {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []db.Mutation
	for _, m := range l.muts {
		if m.Type == t {
			out = append(out, m)
		}
	}
	return out
}

// TestNoopBeatCoalesced: a steady-state beat must not push a full node
// after-image — it parks in the buffer and the flush tick commits one
// MutBeat record, after which the store's LastHeartbeat has advanced.
func TestNoopBeatCoalesced(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	lg := &mutationLog{}
	cancel := store.AddMutationObserver(lg.observe)
	defer cancel()

	b.clock.Advance(10 * time.Second)
	beatAt := b.clock.Now()
	b.beat("n1")
	if n := len(lg.byType(db.MutNodePut)); n != 0 {
		t.Fatalf("no-op beat emitted %d full after-images", n)
	}
	rec, _ := store.GetNode("n1")
	if rec.LastHeartbeat.Equal(beatAt) {
		t.Fatal("beat hit the store before the flush tick")
	}

	// The flush tick is a quarter interval out.
	b.clock.Advance(15 * time.Second)
	beats := lg.byType(db.MutBeat)
	if len(beats) != 1 || len(beats[0].Beats) != 1 || beats[0].Beats[0].NodeID != "n1" {
		t.Fatalf("flush emitted %+v, want one MutBeat carrying n1", beats)
	}
	rec, _ = store.GetNode("n1")
	if !rec.LastHeartbeat.Equal(beatAt) {
		t.Fatalf("flushed heartbeat = %s, want %s", rec.LastHeartbeat, beatAt)
	}
	if n := len(lg.byType(db.MutNodePut)); n != 0 {
		t.Fatalf("coalesced flush emitted %d full after-images", n)
	}
}

// TestStateChangingBeatTakesFullPath: a beat that changes anything
// beyond LastHeartbeat (here: the provider pausing) must commit the
// full after-image immediately, not park in the buffer.
func TestStateChangingBeatTakesFullPath(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	b.clock.Advance(10 * time.Second)
	req := b.beatReq("n1")
	req.Paused = true
	if _, err := b.coord.Heartbeat(req); err != nil {
		t.Fatal(err)
	}
	rec, _ := store.GetNode("n1")
	if rec.Status != db.NodePaused || !rec.LastHeartbeat.Equal(b.clock.Now()) {
		t.Fatalf("pausing beat not committed immediately: %+v", rec)
	}
	if _, buffered := guardEntries(b.coord); len(buffered) != 0 {
		t.Fatalf("state-changing beat also buffered: %v", buffered)
	}
}

// TestCoalescedFlushBoundaryCrash: a crash on either side of the flush
// boundary must keep recovery byte-equivalent. Before the tick, the
// buffered advance is in neither the pre-crash image nor the log —
// volatile by design, nothing acked depends on it. After the tick, the
// MutBeat frame is durable and replay must reproduce the advance.
func TestCoalescedFlushBoundaryCrash(t *testing.T) {
	secret := []byte("coalesce-crash-secret")
	clock := simclock.NewSim(t0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	dir := t.TempDir()

	store := db.New(0)
	mgr, err := wal.Open(dir, store, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := New(Config{HeartbeatInterval: time.Minute, AuthSecret: secret},
		clock, store, ckpts, eventbus.New(64))
	if err != nil {
		t.Fatal(err)
	}
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
	ag := agent.New(agent.Config{MachineID: "n1", Kernel: "5.15"}, clock, rt, ckpts, nil, NopCoordNotifier{})
	defer ag.Stop()
	resp, err := coord.Register(ag.RegisterRequest("inproc://n1", 1<<30), LocalAgent{A: ag})
	if err != nil {
		t.Fatal(err)
	}

	hb := func(c *Coordinator, seq uint64) api.HeartbeatResponse {
		t.Helper()
		r, herr := c.Heartbeat(api.HeartbeatRequest{
			Envelope:  api.Envelope{ProtocolVersion: api.ProtocolVersion},
			MachineID: "n1", Token: resp.Token, BeatSeq: seq,
		})
		if herr != nil {
			t.Fatal(herr)
		}
		return r
	}

	// Crash mid-window: the beat is buffered, unflushed.
	clock.Advance(10 * time.Second)
	hb(coord, 1)
	if _, buffered := guardEntries(coord); len(buffered) != 1 {
		t.Fatalf("beat not buffered: %v", buffered)
	}
	before := store.ExportState()
	coord.Stop()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	store2 := db.New(0)
	mgr2, err := wal.Open(dir, store2, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := invariant.CheckEquivalence(before, store2.ExportState()); len(vs) != 0 {
		t.Fatalf("pre-flush crash broke equivalence: %v", vs)
	}

	// Successor serves the same node; this time the flush tick lands
	// before the crash, so the MutBeat frame must survive replay.
	coord2, err := New(Config{HeartbeatInterval: time.Minute, AuthSecret: secret},
		clock, store2, ckpts, eventbus.New(64))
	if err != nil {
		t.Fatal(err)
	}
	coord2.RecoverState()
	if _, err := coord2.Register(ag.RegisterRequest("inproc://n1", 1<<30), LocalAgent{A: ag}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Second)
	hb(coord2, 1)
	beatAt := clock.Now()
	clock.Advance(15 * time.Second) // flush tick
	rec, _ := store2.GetNode("n1")
	if !rec.LastHeartbeat.Equal(beatAt) {
		t.Fatalf("flush did not land: %s vs %s", rec.LastHeartbeat, beatAt)
	}
	before2 := store2.ExportState()
	coord2.Stop()
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	store3 := db.New(0)
	mgr3, err := wal.Open(dir, store3, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if vs := invariant.CheckEquivalence(before2, store3.ExportState()); len(vs) != 0 {
		t.Fatalf("post-flush crash broke equivalence: %v", vs)
	}
	rec3, err := store3.GetNode("n1")
	if err != nil || !rec3.LastHeartbeat.Equal(beatAt) {
		t.Fatalf("recovered heartbeat = %+v, %v; want %s", rec3, err, beatAt)
	}
}

// TestDuplicateBeatIntoHalfFlushedBatch: a replayed beat delivered
// after its original was flushed — while the next batch is still
// filling — must be swallowed by the guard: no re-enqueue, no store
// write, and the fold over the mutation stream stays exact.
func TestDuplicateBeatIntoHalfFlushedBatch(t *testing.T) {
	store := db.New(0)
	b := newBeatRig(t, time.Minute, store)
	b.addSilentNode("n1")
	audit, cancel := invariant.NewBeatAudit(store)
	defer cancel()

	b.clock.Advance(10 * time.Second)
	req1 := b.beatReq("n1")
	if resp, err := b.coord.Heartbeat(req1); err != nil || !resp.Acknowledged {
		t.Fatalf("original = %+v, %v", resp, err)
	}
	firstAt := b.clock.Now()
	b.clock.Advance(15 * time.Second) // flush the first batch
	rec, _ := store.GetNode("n1")
	if !rec.LastHeartbeat.Equal(firstAt) {
		t.Fatalf("first batch not flushed: %s", rec.LastHeartbeat)
	}

	// Start the next batch, then replay the old beat into it.
	b.clock.Advance(10 * time.Second)
	b.beat("n1")
	secondAt := b.clock.Now()
	lsnBefore := store.CurrentLSN()
	for i := 0; i < 3; i++ {
		resp, err := b.coord.Heartbeat(req1)
		if err != nil || !resp.Acknowledged {
			t.Fatalf("replay %d = %+v, %v", i, resp, err)
		}
	}
	if lsn := store.CurrentLSN(); lsn != lsnBefore {
		t.Fatalf("replays mutated the store: LSN %d -> %d", lsnBefore, lsn)
	}
	_, buffered := guardEntries(b.coord)
	if len(buffered) != 1 || !buffered["n1"].Equal(secondAt) {
		t.Fatalf("replay disturbed the half-flushed batch: %v", buffered)
	}

	b.clock.Advance(15 * time.Second) // flush the second batch
	rec, _ = store.GetNode("n1")
	if !rec.LastHeartbeat.Equal(secondAt) {
		t.Fatalf("second batch landed %s, want %s", rec.LastHeartbeat, secondAt)
	}
	if vs := audit.Check(store); len(vs) != 0 {
		t.Fatalf("beat-delta fold diverged: %v", vs)
	}
}
