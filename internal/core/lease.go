package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gpunion/internal/simclock"
)

// ErrLeaseHeld is returned by Acquire while another replica's lease is
// still live (including its skew-tolerance grace).
var ErrLeaseHeld = errors.New("core: lease held by another replica")

// ErrLeaseLost is returned by Renew when the caller no longer holds the
// lease — its epoch was superseded or its grant expired and went to
// someone else. The caller must step down immediately.
var ErrLeaseLost = errors.New("core: lease lost")

// LeaseClient is what a coordinator uses to acquire and keep
// leadership. The canonical implementation is *Lease (an in-process
// arbiter standing in for an external consensus service); the chaos
// harness wraps it to inject partitions between a leader and the
// arbiter.
type LeaseClient interface {
	// Acquire attempts to take the lease for holder. On success it
	// returns a fresh, strictly increasing epoch and the expiry time
	// (on the arbiter's clock).
	Acquire(holder string) (epoch uint64, until time.Time, err error)
	// Renew extends the lease the caller holds at the given epoch.
	Renew(holder string, epoch uint64) (until time.Time, err error)
	// Leader reports the current holder and epoch (best effort; holder
	// is empty when the lease is free or expired).
	Leader() (holder string, epoch uint64)
}

// Lease is a single-key lease arbiter with monotonically increasing
// epochs — the fencing-token generator of the replication design. It
// stands in for the external coordination service (etcd, a consensus
// group) a production deployment would use; the protocol it enforces is
// the real one:
//
//   - at most one holder at a time, per epoch;
//   - the epoch increases on every grant, never repeats;
//   - an expired lease is only re-granted after an extra SkewTolerance
//     has passed, so a holder whose clock runs behind the arbiter's by
//     at most that much observes its own expiry (and self-fences)
//     before a successor can exist.
//
// The second rule bounds unavailability instead of risking split brain:
// after a leader dies, writes are rejected everywhere for at most
// TTL + SkewTolerance before a standby can take over.
type Lease struct {
	clock simclock.Clock
	// TTL is how long one grant or renewal lasts.
	ttl time.Duration
	// skewTolerance is the extra wait after expiry before re-granting.
	skewTolerance time.Duration

	mu      sync.Mutex
	epoch   uint64
	holder  string
	expires time.Time
}

// NewLease creates an arbiter on the given (authoritative) clock.
func NewLease(clock simclock.Clock, ttl, skewTolerance time.Duration) *Lease {
	return &Lease{clock: clock, ttl: ttl, skewTolerance: skewTolerance}
}

// TTL returns the grant duration.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Acquire implements LeaseClient.
func (l *Lease) Acquire(holder string) (uint64, time.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock.Now()
	if l.holder != "" && l.holder != holder && now.Before(l.expires.Add(l.skewTolerance)) {
		return 0, time.Time{}, fmt.Errorf("%w: %s until %s", ErrLeaseHeld, l.holder, l.expires)
	}
	l.epoch++
	l.holder = holder
	l.expires = now.Add(l.ttl)
	return l.epoch, l.expires, nil
}

// Renew implements LeaseClient.
func (l *Lease) Renew(holder string, epoch uint64) (time.Time, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holder != holder || l.epoch != epoch {
		return time.Time{}, ErrLeaseLost
	}
	now := l.clock.Now()
	if !now.Before(l.expires.Add(l.skewTolerance)) {
		// Fully lapsed: the holder must re-Acquire (and get a new epoch)
		// rather than silently resume an expired term.
		return time.Time{}, ErrLeaseLost
	}
	l.expires = now.Add(l.ttl)
	return l.expires, nil
}

// Leader implements LeaseClient.
func (l *Lease) Leader() (string, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.holder == "" || !l.clock.Now().Before(l.expires) {
		return "", l.epoch
	}
	return l.holder, l.epoch
}
