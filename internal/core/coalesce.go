package core

import (
	"sort"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
)

// Heartbeat coalescing: at fleet scale the overwhelming majority of
// beats change nothing about the node record except LastHeartbeat.
// Committing each of those through UpdateNode pays a shard lock, a full
// node after-image (GPU list included) and one WAL frame per beat —
// write volume proportional to fleet size even when nothing happens.
// Instead, no-op beats park their timestamp in an ingress buffer here;
// a simclock tick at a quarter of the heartbeat interval flushes the
// buffer through Store.TouchNodes, which batches the deltas per shard
// into one critical section and one compact MutBeat record each.
//
// What stays per-beat: the heartbeat monitor (failure detection must
// see every arrival), the dedup sequence guard, telemetry samples, and
// every beat that actually changes state (status flips, returning
// nodes, reconciliation work) — those take the full UpdateNode path
// exactly as before. The only observable difference is that a node's
// stored LastHeartbeat may lag its true last beat by at most a quarter
// interval, well inside the missed-heartbeat threshold every consumer
// of that field tolerates.
//
// The buffer is deliberately volatile. A buffered advance was never a
// store mutation, so no acknowledgement depends on it; on Stop or
// step-down it is discarded — agents re-beat within one interval and
// the successor converges — which also keeps the crash-equivalence
// audit exact (the buffer is in neither the pre-crash export nor the
// recovered store).

// beatFlushCap bounds the buffer: a burst that fills it flushes
// immediately instead of waiting for the tick.
const beatFlushCap = 512

// isNoopBeat reports whether this heartbeat changes nothing about the
// node record except LastHeartbeat: the node was not away, its status
// is stable, it carries no health events, reconciliation found nothing
// (no suspicious report entries, no lost placements, no orphans, no
// devices inside the placement grace), and the telemetry agrees with
// every recorded allocation flag. Exactly these beats may skip the full
// UpdateNode commit and coalesce.
//
// A beat carrying health events is never a no-op: its fold advances the
// record's Health/HealthAt, and the LastHeartbeat advance must commit
// with it — parking the beat in the coalescing buffer would let the
// health fold run ahead of a heartbeat the store has not seen, and a
// buffer discarded on stop/step-down would drop the beat while its
// health fold survived in the WAL.
func (c *Coordinator) isNoopBeat(rec db.NodeRecord, tel []gpu.Telemetry,
	health []gpu.HealthEvent, wasAway bool, newStatus db.NodeStatus,
	suspicious bool, lost []db.JobRecord, orphans []string,
	protected map[string]bool) bool {
	if len(health) > 0 {
		return false
	}
	if wasAway || newStatus != rec.Status || suspicious ||
		len(lost) > 0 || len(orphans) > 0 || len(protected) > 0 {
		return false
	}
	for _, g := range rec.GPUs {
		for _, t := range tel {
			if g.DeviceID == t.DeviceID && g.Allocated != t.Allocated {
				return false
			}
		}
	}
	return true
}

// enqueueBeat parks one no-op beat in the coalescing buffer and arms
// the flush tick if the buffer was idle. A full buffer flushes
// synchronously so a burst cannot grow it unbounded.
func (c *Coordinator) enqueueBeat(nodeID string, at time.Time) {
	flushNow := false
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	if c.beats == nil {
		c.beats = make(map[string]time.Time)
	}
	if prev, ok := c.beats[nodeID]; !ok || at.After(prev) {
		c.beats[nodeID] = at
	}
	if len(c.beats) >= beatFlushCap {
		flushNow = true
	} else if c.beatTimer == nil {
		c.beatTimer = c.clock.AfterFunc(c.beatFlushInterval(), c.flushBeats)
	}
	c.mu.Unlock()
	if flushNow {
		c.flushBeats()
	}
}

// beatFlushInterval is the coalescing window: a quarter of the
// heartbeat interval, so a stored LastHeartbeat lags its node's true
// last beat by far less than the missed-beat threshold.
func (c *Coordinator) beatFlushInterval() time.Duration {
	return c.cfg.HeartbeatInterval / 4
}

// flushBeats drains the buffer and commits it through TouchNodes: one
// critical section, one LSN and one MutBeat frame per shard touched.
// A coordinator that stopped or lost the lease discards the batch
// instead — it must not touch the database, and nothing acknowledged
// depends on a buffered advance.
func (c *Coordinator) flushBeats() {
	c.mu.Lock()
	if c.beatTimer != nil {
		c.beatTimer.Stop()
		c.beatTimer = nil
	}
	if c.stopped || !c.leadingLocked() {
		c.beats = nil
		c.mu.Unlock()
		return
	}
	if len(c.beats) == 0 {
		c.mu.Unlock()
		return
	}
	batch := make([]db.BeatDelta, 0, len(c.beats))
	for id, at := range c.beats {
		batch = append(batch, db.BeatDelta{NodeID: id, At: at})
	}
	c.beats = make(map[string]time.Time)
	c.mu.Unlock()
	// Deterministic flush order: map iteration is randomized, and the
	// emitted MutBeat records feed byte-compared WAL and replication
	// streams in the deterministic simulations.
	sort.Slice(batch, func(i, j int) bool { return batch[i].NodeID < batch[j].NodeID })
	c.met.beatBatch.Observe(float64(len(batch)))
	c.db.TouchNodes(batch)
}
