package core

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// httpRig runs a coordinator and agents as real HTTP servers on
// localhost — the full REST path the daemons use — but on a shared
// simulated clock: tests advance time explicitly instead of sleeping,
// so the suite is deterministic and fast. HTTP round trips are
// synchronous, so every request completes before the clock moves on.
type httpRig struct {
	t        *testing.T
	clock    *simclock.Sim
	coord    *Coordinator
	coordSrv *httptest.Server
	client   *Client
	ckpts    *checkpoint.Store
}

func newHTTPRig(t *testing.T) *httpRig {
	t.Helper()
	clock := simclock.NewSim(t0)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord, err := New(Config{HeartbeatInterval: 100 * time.Millisecond}, clock,
		db.New(0), ckpts, eventbus.New(256))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	srv := httptest.NewServer(coord.Handler(nil))
	t.Cleanup(srv.Close)
	return &httpRig{
		t: t, clock: clock, coord: coord, coordSrv: srv,
		client: NewClient(srv.URL), ckpts: ckpts,
	}
}

// addHTTPNode starts an agent HTTP server, registers it through the
// coordinator's REST API, and arms a heartbeat loop on the simulated
// clock.
func (r *httpRig) addHTTPNode(id string, specs ...gpu.Spec) (*agent.Agent, *Client) {
	r.t.Helper()
	rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(specs...), 0, 0)
	coordClient := NewClient(r.coordSrv.URL)
	ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15"},
		r.clock, rt, r.ckpts, nil, coordClient)
	r.t.Cleanup(ag.Stop)

	agSrv := httptest.NewServer(ag.Handler())
	r.t.Cleanup(agSrv.Close)

	resp, err := coordClient.Register(ag.RegisterRequest(agSrv.URL, 1<<30))
	if err != nil {
		r.t.Fatal(err)
	}
	ag.SetToken(resp.Token)

	var beat func()
	beat = func() {
		if !ag.Departed() {
			_, _ = coordClient.Heartbeat(ag.HeartbeatRequest())
		}
		r.clock.AfterFunc(resp.HeartbeatInterval, beat)
	}
	r.clock.AfterFunc(resp.HeartbeatInterval, beat)
	return ag, coordClient
}

// waitFor advances simulated time in small steps until cond holds or
// the simulated budget runs out. No wall-clock sleeping.
func (r *httpRig) waitFor(budget time.Duration, cond func() bool) {
	r.t.Helper()
	const step = 100 * time.Millisecond
	for elapsed := time.Duration(0); ; elapsed += step {
		if cond() {
			return
		}
		if elapsed >= budget {
			break
		}
		r.clock.Advance(step)
	}
	r.t.Fatal("condition not met within the simulated budget")
}

func TestHTTPEndToEndJobLifecycle(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090)

	spec := workload.SmallCNN
	spec.TotalSteps = 20 // ~4 s of real time on the modelled 3090
	jobID, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: spec.GPUMemMiB, Training: &spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.client.JobStatus(jobID)
	if err != nil || st.State != db.JobRunning {
		t.Fatalf("status = %+v, %v", st, err)
	}
	r.waitFor(30*time.Second, func() bool {
		st, err := r.client.JobStatus(jobID)
		return err == nil && st.State == db.JobCompleted
	})
}

func TestHTTPNodesEndpoint(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090, gpu.RTX3090)
	nodes, err := r.client.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].ID != "n1" || len(nodes[0].GPUs) != 2 {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestHTTPKillJob(t *testing.T) {
	r := newHTTPRig(t)
	ag, _ := r.addHTTPNode("n1", gpu.RTX3090)
	jobID, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: 8192, Training: &workload.SmallCNN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.KillJob(jobID); err != nil {
		t.Fatal(err)
	}
	st, _ := r.client.JobStatus(jobID)
	if st.State != db.JobKilled {
		t.Fatalf("state = %s", st.State)
	}
	if len(ag.Status().RunningJobs) != 0 {
		t.Fatal("agent still running the job")
	}
	if err := r.client.KillJob("ghost"); err == nil {
		t.Fatal("killing unknown job succeeded")
	}
}

func TestHTTPProviderControls(t *testing.T) {
	r := newHTTPRig(t)
	ag, _ := r.addHTTPNode("n1", gpu.RTX3090)
	agClient := agent.NewClient("http://" + agentAddr(t, ag))
	_ = agClient
	// Drive the local controls through the agent's own REST API.
	srv := httptest.NewServer(ag.Handler())
	defer srv.Close()
	local := agent.NewClient(srv.URL)

	if err := local.Pause(); err != nil {
		t.Fatal(err)
	}
	st, err := local.Status()
	if err != nil || !st.Paused {
		t.Fatalf("status = %+v, %v", st, err)
	}
	if err := local.Resume(); err != nil {
		t.Fatal(err)
	}
	ks, err := local.KillSwitch()
	if err != nil || len(ks.KilledJobs) != 0 {
		t.Fatalf("killswitch = %+v, %v", ks, err)
	}
}

// agentAddr is a placeholder (the agent has no listener of its own);
// tests construct servers explicitly.
func agentAddr(_ *testing.T, _ *agent.Agent) string { return "127.0.0.1:0" }

func TestHTTPScheduledDepartureMigration(t *testing.T) {
	r := newHTTPRig(t)
	ag1, _ := r.addHTTPNode("n1", gpu.RTX3090)
	r.addHTTPNode("n2", gpu.RTX3090)

	jobID, err := r.client.SubmitJob(api.SubmitJobRequest{
		User: "alice", Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB: 8192, CheckpointIntervalSec: 1, Training: &workload.SmallCNN,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := r.client.JobStatus(jobID)
	firstNode := st.NodeID
	if firstNode == "" {
		t.Fatal("job not placed")
	}
	// Let it run and checkpoint, then gracefully depart its host.
	r.clock.Advance(1500 * time.Millisecond)
	if firstNode == "n1" {
		ag1.Depart(api.DepartScheduled, time.Minute)
	} else {
		t.Skip("job placed on n2 by rotation; scenario covered in sim tests")
	}

	r.waitFor(10*time.Second, func() bool {
		st, err := r.client.JobStatus(jobID)
		return err == nil && st.State == db.JobRunning && st.NodeID == "n2"
	})
	st, _ = r.client.JobStatus(jobID)
	if st.Migrations != 1 {
		t.Fatalf("migrations = %d", st.Migrations)
	}
}

func TestHTTPMetricsEndpoints(t *testing.T) {
	r := newHTTPRig(t)
	ag, _ := r.addHTTPNode("n1", gpu.RTX3090)
	srv := httptest.NewServer(ag.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "gpunion_gpu_utilization") {
		t.Fatalf("agent metrics missing gauges:\n%s", body)
	}

	resp2, err := r.coordSrv.Client().Get(r.coordSrv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n2, _ := resp2.Body.Read(buf)
	if !strings.Contains(string(buf[:n2]), "gpunion_scheduling_latency_seconds") {
		t.Fatal("coordinator metrics missing scheduling latency")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	r := newHTTPRig(t)
	resp, err := r.coordSrv.Client().Post(r.coordSrv.URL+"/v1/jobs", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON status = %d", resp.StatusCode)
	}
	if _, err := r.client.JobStatus("ghost"); err == nil {
		t.Fatal("unknown job status succeeded")
	}
}

func TestHTTPHeartbeatAuthRejected(t *testing.T) {
	r := newHTTPRig(t)
	r.addHTTPNode("n1", gpu.RTX3090)
	bad := NewClient(r.coordSrv.URL)
	bad.SetToken("forged.token")
	_, err := bad.Heartbeat(api.HeartbeatRequest{MachineID: "n1", Token: "forged.token"})
	if err == nil {
		t.Fatal("forged heartbeat accepted")
	}
}
