package sim

import (
	"testing"
	"time"
)

// TestCrashRecovery is the coordinator crash/restart acceptance
// scenario: a coordinator dies mid-run and its successor must restore
// nodes, jobs and allocations byte-for-byte from snapshot + WAL, then
// drain the recovered queue without any resubmission.
func TestCrashRecovery(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PendingAtCrash == 0 {
		t.Fatalf("scenario too small: nothing pending at crash (%+v)", res)
	}
	if res.RunningAtCrash == 0 {
		t.Fatalf("scenario too small: nothing running at crash (%+v)", res)
	}
	if !res.Recovery.SnapshotLoaded {
		t.Errorf("no snapshot recovered: %+v", res.Recovery)
	}
	if res.Recovery.Replayed == 0 {
		t.Errorf("no WAL tail replayed: %+v", res.Recovery)
	}
	if !res.NodesIntact || !res.JobsIntact || !res.AllocsIntact {
		t.Fatalf("recovered state differs from pre-crash state: nodes=%v jobs=%v allocs=%v",
			res.NodesIntact, res.JobsIntact, res.AllocsIntact)
	}
	if res.RecoveredJobs != res.SubmittedJobs {
		t.Fatalf("recovered %d of %d jobs", res.RecoveredJobs, res.SubmittedJobs)
	}
	if res.LostJobs != 0 {
		t.Fatalf("%d jobs lost across the restart", res.LostJobs)
	}
	// Every pre-crash job plus the post-restart one must finish purely
	// from recovered state.
	if want := res.SubmittedJobs + 1; res.CompletedAfterRecovery != want {
		t.Fatalf("completed %d of %d jobs after recovery", res.CompletedAfterRecovery, want)
	}
	if res.NewJobID == "" {
		t.Fatal("post-recovery submission failed")
	}
}

// TestCrashRecoveryWithoutSnapshot forces the pure-log path: no
// checkpoint ever ran, so the whole history replays from segment zero.
func TestCrashRecoveryWithoutSnapshot(t *testing.T) {
	res, err := RunCrashRecovery(CrashRecoveryConfig{
		NoSnapshot: true, Nodes: 2, Jobs: 5, PostRecovery: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.SnapshotLoaded {
		t.Fatalf("unexpected snapshot: %+v", res.Recovery)
	}
	if !res.NodesIntact || !res.JobsIntact || !res.AllocsIntact {
		t.Fatalf("log-only recovery differs from pre-crash state: %+v", res)
	}
	if res.LostJobs != 0 {
		t.Fatalf("%d jobs lost across the restart", res.LostJobs)
	}
}
