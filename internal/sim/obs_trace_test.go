package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"gpunion/internal/chaos"
	"gpunion/internal/db"
	"gpunion/internal/invariant"
	"gpunion/internal/obs"
	"gpunion/internal/simclock"
)

// traceChaosConfig is a short, fault-dense run used by the trace
// tests: enough churn and partitions to land fault annotations without
// burning a full campus day.
func traceChaosConfig(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           2 * time.Hour,
			ChurnPerNodePerDay: 8,
			PartitionsPerDay:   10,
		},
		Jobs:       8,
		AuditEvery: 10 * time.Minute,
		Drain:      30 * time.Minute,
	}
}

// TestChaosTraceDeterminism: identical seeds must export byte-identical
// traces. The flight recorder rides the single-driver simulation, so a
// violation's trace from CI replays exactly on a laptop — the same
// guarantee TestChaosDeterministicSchedule gives for the fault
// schedule, extended to the full recorded timeline.
func TestChaosTraceDeterminism(t *testing.T) {
	export := func() []byte {
		t.Helper()
		res, err := RunChaos(traceChaosConfig(42))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("violations under trace run: %v", res.Violations)
		}
		if len(res.Trace) == 0 {
			t.Fatal("flight recorder captured nothing")
		}
		kinds := obs.Kinds(res.Trace)
		if kinds[obs.KindFaultInjected] == 0 {
			t.Fatalf("no fault annotations in trace: %v", kinds)
		}
		if kinds["job.submitted"] == 0 || kinds["job.completed"] == 0 {
			t.Fatalf("job lifecycle missing from trace: %v", kinds)
		}
		raw, err := json.Marshal(obs.Export{Events: res.Trace, Dropped: res.TraceDropped})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different traces: %d vs %d bytes", len(a), len(b))
	}
}

// sabotagePlatform is a minimal chaos.Platform whose CrashNode breaks
// the store on purpose (a device double-allocation) instead of
// modelling a fault. It exists to prove the trace localizes the breach:
// the injected fault's annotation must precede the violation's.
type sabotagePlatform struct {
	store db.Store
}

func (p *sabotagePlatform) Store() db.Store { return p.store }

func (p *sabotagePlatform) CrashNode(string) {
	for _, id := range []string{"evil-a", "evil-b"} {
		_ = p.store.InsertJob(db.JobRecord{ID: id, State: db.JobRunning,
			NodeID: "ws-1", DeviceID: "gpu0", ImageName: "img"})
		p.store.RecordAllocation(db.AllocationRecord{JobID: id,
			NodeID: "ws-1", DeviceID: "gpu0", Start: Epoch})
	}
}

func (p *sabotagePlatform) DepartNode(string, bool)                 {}
func (p *sabotagePlatform) ReturnNode(string)                       {}
func (p *sabotagePlatform) PartitionStart([]string)                 {}
func (p *sabotagePlatform) PartitionHeal([]string)                  {}
func (p *sabotagePlatform) LatencySpikeStart(string)                {}
func (p *sabotagePlatform) LatencySpikeHeal(string)                 {}
func (p *sabotagePlatform) SetWALFault(chaos.WALFaultMode)          {}
func (p *sabotagePlatform) SetClockSkew(string, time.Duration)      {}
func (p *sabotagePlatform) SetDupDelivery(bool)                     {}
func (p *sabotagePlatform) DataPartitionStart([]string)             {}
func (p *sabotagePlatform) DataPartitionHeal([]string)              {}
func (p *sabotagePlatform) SetCheckpointFault(chaos.CkptFaultMode)  {}
func (p *sabotagePlatform) CrashCoordinator() []invariant.Violation { return nil }
func (p *sabotagePlatform) ExtraChecks() []invariant.Violation      { return nil }

// TestChaosSabotageTraceLocalization: a deliberately broken invariant
// must show up in the trace export *after* the fault annotation that
// caused it — the fault-localization contract O&M debugging relies on.
func TestChaosSabotageTraceLocalization(t *testing.T) {
	clock := simclock.NewSim(Epoch)
	plat := &sabotagePlatform{store: db.New(0)}
	rec := obs.NewRecorder(clock, 0)

	eng := chaos.NewEngine(clock, plat)
	eng.SetRecorder(rec)
	rep := eng.Execute(chaos.Schedule{
		{At: 10 * time.Minute, Kind: chaos.KindNodeCrash, Node: "ws-1"},
	}, 0, 5*time.Minute)
	if len(rep.Violations) == 0 {
		t.Fatal("sabotage produced no violations — the safety net is broken")
	}

	events := rec.Events()
	var fault, violation, doubleAlloc *obs.Event
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.KindFaultInjected:
			if fault == nil {
				fault = ev
			}
		case obs.KindInvariantViolation:
			if violation == nil {
				violation = ev
			}
			if ev.Detail["rule"] == "device-double-allocation" && doubleAlloc == nil {
				doubleAlloc = ev
			}
		}
	}
	if fault == nil {
		t.Fatalf("no fault annotation recorded: %v", obs.Kinds(events))
	}
	if violation == nil {
		t.Fatalf("no violation annotation recorded: %v", obs.Kinds(events))
	}
	if fault.Seq >= violation.Seq {
		t.Fatalf("fault (seq %d) does not precede violation (seq %d)",
			fault.Seq, violation.Seq)
	}
	if fault.Detail["kind"] != string(chaos.KindNodeCrash) {
		t.Errorf("fault annotation lost its kind: %v", fault.Detail)
	}
	if doubleAlloc == nil {
		t.Errorf("device-double-allocation never annotated; first violation: %v",
			violation.Detail)
	}
}
