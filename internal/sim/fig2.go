package sim

import (
	"math/rand"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/simclock"
	"gpunion/internal/workload"
)

// Fig2Config parameterises the utilization comparison (paper Fig. 2:
// average GPU utilization rose from 34% to 67% over six weeks, with 40%
// more interactive sessions).
type Fig2Config struct {
	// Weeks is the observation period (paper: 6).
	Weeks int
	// Seed drives all stochastic processes.
	Seed int64
}

// Fig2Result carries the measured series.
type Fig2Result struct {
	// BaselineUtilization is campus-wide utilization under manual
	// per-lab coordination.
	BaselineUtilization float64
	// GPUnionUtilization is utilization with pooled scheduling.
	GPUnionUtilization float64
	// WeeklyBaseline / WeeklyGPUnion are per-week utilization series.
	WeeklyBaseline []float64
	WeeklyGPUnion  []float64
	// BaselineSessions / GPUnionSessions count interactive sessions
	// that actually started.
	BaselineSessions int
	GPUnionSessions  int
	// LostCrossLabJobs counts batch demand that had no home under
	// manual coordination (users without suitable hardware).
	LostCrossLabJobs int
}

// SessionGain returns the relative increase in interactive sessions.
func (r Fig2Result) SessionGain() float64 {
	if r.BaselineSessions == 0 {
		return 0
	}
	return float64(r.GPUnionSessions-r.BaselineSessions) / float64(r.BaselineSessions)
}

// labDemand describes one lab's own workload stream.
type labDemand struct {
	node NodeDef
	// batchPerDay is the base arrival rate of the lab's own training
	// jobs (diurnally modulated).
	batchPerDay float64
	// sessionsPerDay is the base rate of interactive-session attempts
	// by the lab's own students.
	sessionsPerDay float64
	// mix picks a training spec for each arrival.
	mix func(rng *rand.Rand) workload.TrainingSpec
}

// jitterSpec scales a base spec by ×[0.8, 1.2) so no two jobs are
// identical.
func jitterSpec(rng *rand.Rand, base workload.TrainingSpec) workload.TrainingSpec {
	f := 0.8 + rng.Float64()*0.4
	s := base
	s.TotalSteps = int64(float64(base.TotalSteps) * f)
	s.StateBytes = int64(float64(base.StateBytes) * f)
	return s
}

func pick(rng *rand.Rand, weights []float64, specs []workload.TrainingSpec) workload.TrainingSpec {
	x := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return jitterSpec(rng, specs[i])
		}
	}
	return jitterSpec(rng, specs[len(specs)-1])
}

// campusDemand builds the paper campus's per-lab demand streams. Rates
// are calibrated so manual coordination lands near the paper's 34%
// average utilization: workstations are moderately loaded while the
// multi-GPU servers sit largely idle — the imbalance §1 describes.
func campusDemand() []labDemand {
	var out []labDemand
	for _, def := range PaperCampus() {
		d := labDemand{node: def}
		switch {
		case def.ID == "srv-4090":
			d.batchPerDay = 50
			d.sessionsPerDay = 2
			d.mix = func(rng *rand.Rand) workload.TrainingSpec {
				return pick(rng,
					[]float64{0.4, 0.4, 0.2},
					[]workload.TrainingSpec{workload.SmallCNN, workload.SmallTransformer, workload.LargeCNN})
			}
		case def.ID == "srv-a100":
			d.batchPerDay = 2.4
			d.sessionsPerDay = 1
			d.mix = func(rng *rand.Rand) workload.TrainingSpec {
				return pick(rng,
					[]float64{0.5, 0.5},
					[]workload.TrainingSpec{workload.LargeTransformer, workload.LargeCNN})
			}
		case def.ID == "srv-a6000":
			d.batchPerDay = 16
			d.sessionsPerDay = 1.5
			d.mix = func(rng *rand.Rand) workload.TrainingSpec {
				return pick(rng,
					[]float64{0.5, 0.5},
					[]workload.TrainingSpec{workload.LargeCNN, workload.SmallTransformer})
			}
		default: // single-3090 workstations
			d.batchPerDay = 7
			d.sessionsPerDay = 2.5
			d.mix = func(rng *rand.Rand) workload.TrainingSpec {
				return pick(rng,
					[]float64{0.7, 0.3},
					[]workload.TrainingSpec{workload.SmallCNN, workload.SmallTransformer})
			}
		}
		out = append(out, d)
	}
	return out
}

// crossLabDemand is the demand stream with no hardware of its own:
// students and GPU-less groups. Under manual coordination it is lost;
// under GPUnion it lands on idle devices.
type crossLabDemand struct {
	batchPerDay    float64
	sessionsPerDay float64
}

func campusCrossDemand() crossLabDemand {
	return crossLabDemand{batchPerDay: 120, sessionsPerDay: 1.5}
}

// sessionFrom draws an interactive session profile.
func sessionFrom(rng *rand.Rand) workload.Session {
	return workload.Session{
		Duration:       30*time.Minute + time.Duration(rng.Int63n(int64(3*time.Hour))),
		GPUMemMiB:      4096 + int64(rng.Intn(3))*4096,
		AvgUtilization: 0.2 + rng.Float64()*0.2,
	}
}

// submitBatch submits a training job and abandons interactive-style
// placement failures silently (batch jobs queue).
func submitBatch(c *Campus, user string, spec workload.TrainingSpec) {
	_, _ = c.Coord.SubmitJob(TrainingJobSubmission(user, spec, 10*time.Minute))
}

// attemptSession submits an interactive session; if it cannot start
// immediately the student gives up (the job is killed). Returns whether
// the session started.
func attemptSession(c *Campus, user string, s workload.Session) bool {
	id, err := c.Coord.SubmitJob(SessionSubmission(user, s))
	if err != nil {
		return false
	}
	st, err := c.Coord.JobStatus(id)
	if err != nil {
		return false
	}
	if st.State != db.JobRunning {
		_ = c.Coord.KillJob(id)
		return false
	}
	return true
}

// RunFig2 runs both deployments over the configured horizon and returns
// the comparison.
func RunFig2(cfg Fig2Config) (Fig2Result, error) {
	if cfg.Weeks <= 0 {
		cfg.Weeks = 6
	}
	span := time.Duration(cfg.Weeks) * 7 * 24 * time.Hour
	labs := campusDemand()
	cross := campusCrossDemand()

	var res Fig2Result

	// --- Manual coordination baseline: one isolated single-lab pool per
	// node; cross-lab demand has nowhere to go. ---
	var baselineBusy time.Duration
	weeklyBusyBase := make([]time.Duration, cfg.Weeks)
	for i, lab := range labs {
		campus, err := NewCampus([]NodeDef{lab.node}, CampusConfig{
			HeartbeatInterval: time.Minute, ProgressTick: time.Minute,
		})
		if err != nil {
			return res, err
		}
		demand := NewDemand(cfg.Seed + int64(i))
		rng := demand.Rand()
		lab := lab
		c := campus
		demand.PoissonArrivals(campus.Clock, Epoch, span, lab.batchPerDay, func(time.Time) {
			submitBatch(c, lab.node.Lab, lab.mix(rng))
		})
		demand.PoissonArrivals(campus.Clock, Epoch, span, lab.sessionsPerDay, func(time.Time) {
			if attemptSession(c, lab.node.Lab+"-student", sessionFrom(rng)) {
				res.BaselineSessions++
			}
		})
		campus.Run(span)
		baselineBusy += campus.BusyGPUTime(Epoch.Add(span))
		for w := 0; w < cfg.Weeks; w++ {
			from := Epoch.Add(time.Duration(w) * 7 * 24 * time.Hour)
			to := from.Add(7 * 24 * time.Hour)
			weeklyBusyBase[w] += campus.busyWindow(from, to)
		}
		campus.Stop()
	}
	totalGPUs := TotalGPUs(PaperCampus())
	res.BaselineUtilization = clamp01(float64(baselineBusy) / float64(time.Duration(totalGPUs)*span))
	for w := 0; w < cfg.Weeks; w++ {
		res.WeeklyBaseline = append(res.WeeklyBaseline,
			clamp01(float64(weeklyBusyBase[w])/float64(time.Duration(totalGPUs)*7*24*time.Hour)))
	}
	// Cross-lab demand lost under manual coordination (counted, not run).
	lostRng := NewDemand(cfg.Seed + 1000)
	res.LostCrossLabJobs = lostRng.PoissonArrivals(simclock.NewSim(Epoch), Epoch, span, cross.batchPerDay, func(time.Time) {})

	// --- GPUnion: one pooled campus, all demand streams. ---
	pooled, err := NewCampus(PaperCampus(), CampusConfig{
		HeartbeatInterval: time.Minute, ProgressTick: time.Minute,
	})
	if err != nil {
		return res, err
	}
	defer pooled.Stop()
	for i, lab := range labs {
		demand := NewDemand(cfg.Seed + int64(i))
		rng := demand.Rand()
		lab := lab
		demand.PoissonArrivals(pooled.Clock, Epoch, span, lab.batchPerDay, func(time.Time) {
			submitBatch(pooled, lab.node.Lab, lab.mix(rng))
		})
		demand.PoissonArrivals(pooled.Clock, Epoch, span, lab.sessionsPerDay, func(time.Time) {
			if attemptSession(pooled, lab.node.Lab+"-student", sessionFrom(rng)) {
				res.GPUnionSessions++
			}
		})
	}
	// Cross-lab batch splits into interactive-hours submissions by
	// GPU-less users and an opportunistic background stream that fills
	// idle (off-peak) periods.
	crossD := NewDemand(cfg.Seed + 2000)
	crossRng := crossD.Rand()
	crossSpec := func() workload.TrainingSpec {
		return pick(crossRng,
			[]float64{0.55, 0.3, 0.15},
			[]workload.TrainingSpec{workload.SmallCNN, workload.SmallTransformer, workload.LargeCNN})
	}
	crossD.PoissonArrivals(pooled.Clock, Epoch, span, cross.batchPerDay*0.72, func(time.Time) {
		submitBatch(pooled, "campus-user", crossSpec())
	})
	crossD.PoissonArrivalsMod(pooled.Clock, Epoch, span, cross.batchPerDay*0.28, OffPeakFactor, func(time.Time) {
		submitBatch(pooled, "campus-opportunistic", crossSpec())
	})
	crossD.PoissonArrivals(pooled.Clock, Epoch, span, cross.sessionsPerDay, func(time.Time) {
		if attemptSession(pooled, "campus-student", sessionFrom(crossRng)) {
			res.GPUnionSessions++
		}
	})

	pooled.Run(span)
	res.GPUnionUtilization = pooled.Utilization(Epoch.Add(span))
	for w := 0; w < cfg.Weeks; w++ {
		from := Epoch.Add(time.Duration(w) * 7 * 24 * time.Hour)
		to := from.Add(7 * 24 * time.Hour)
		res.WeeklyGPUnion = append(res.WeeklyGPUnion,
			clamp01(float64(pooled.busyWindow(from, to))/float64(time.Duration(totalGPUs)*7*24*time.Hour)))
	}
	return res, nil
}

// busyWindow sums allocation time overlapping [from, to).
func (c *Campus) busyWindow(from, to time.Time) time.Duration {
	var busy time.Duration
	now := c.Clock.Now()
	for _, a := range c.Coord.DB().Allocations() {
		end := a.End
		if end.IsZero() {
			end = now
		}
		s, e := a.Start, end
		if s.Before(from) {
			s = from
		}
		if e.After(to) {
			e = to
		}
		if e.After(s) {
			busy += e.Sub(s)
		}
	}
	return busy
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
