package sim

// The aggregation-equivalence property battery: a campus whose beats
// flow through rack aggregators must end in a store byte-identical to
// the same campus beating the coordinator directly. Both arms replay
// one seeded schedule of beats, pauses, health bursts and churn
// (announced departures plus re-registrations) on their own simulated
// clocks; between rounds each arm quiesces — every aggregator flush
// window and coordinator coalescing tick drains — so the comparison
// pins down the tier's semantics, not its (audited, bounded) lag.
// Timing races between the tiers are the chaos schedules' domain
// (TestChaosAggCrash / TestChaosAggPartition), where the equivalence
// audit runs with its lag tolerance instead.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
)

// equivRound is one round of the pre-generated schedule. Churn and
// injections apply at the round start (a quiescent point); then every
// present node beats once; then the clock advances one heartbeat
// interval, draining all windows.
type equivRound struct {
	depart []int
	rejoin []int
	pause  []int // toggles
	health map[int][]gpu.HealthEvent
}

// genEquivRounds draws a schedule. The generator tracks the departed
// set so the ops are always applicable, and leaves the last rounds
// churn-free so every node ends the run as a live, beating member
// (otherwise the arms would only be comparable on the survivor set).
func genEquivRounds(seed int64, nodes, rounds int) []equivRound {
	rng := rand.New(rand.NewSource(seed))
	departed := make([]bool, nodes)
	out := make([]equivRound, rounds)
	kinds := []gpu.HealthEventKind{gpu.HealthThermal, gpu.HealthXIDRecoverable, gpu.HealthPower, gpu.HealthSlowdown}
	for r := range out {
		op := equivRound{health: map[int][]gpu.HealthEvent{}}
		settling := r >= rounds-3
		for i := 0; i < nodes; i++ {
			if departed[i] {
				if settling || rng.Float64() < 0.35 {
					op.rejoin = append(op.rejoin, i)
					departed[i] = false
				}
				continue
			}
			if !settling && rng.Float64() < 0.06 {
				op.depart = append(op.depart, i)
				departed[i] = true
				continue
			}
			if !settling && rng.Float64() < 0.10 {
				op.pause = append(op.pause, i)
			}
			if rng.Float64() < 0.15 {
				n := 1 + rng.Intn(2)
				evs := make([]gpu.HealthEvent, 0, n)
				for e := 0; e < n; e++ {
					k := kinds[rng.Intn(len(kinds))]
					evs = append(evs, gpu.HealthEvent{
						Kind: k, Severity: gpu.SeverityWarn,
						Value:   float64(rng.Intn(100)) / 100,
						Message: fmt.Sprintf("equiv r%d", r),
					})
				}
				op.health[i] = evs
			}
		}
		out[r] = op
	}
	return out
}

// equivArm is one side of the comparison: a coordinator, its agents,
// and (on the aggregated side) the rack relays plus the equivalence
// audit, all on a private simulated clock.
type equivArm struct {
	clock     *simclock.Sim
	store     db.Store
	coord     *core.Coordinator
	agents    []*agent.Agent
	health    []*gpu.FakeHealthSource
	aggs      []*aggregator.Aggregator
	aggAudit  *invariant.AggAudit
	beatAudit *invariant.BeatAudit
	paused    []bool
	departed  []bool
}

// equivBeatTap reports every acknowledged beat to the aggregation
// audit, on the aggregator tier and the direct tier alike. Both tiers
// stamp the ack with the same simulated instant, so the tap reads it
// off the arm's clock.
type equivBeatTap struct {
	inner agent.BeatSender
	arm   *equivArm
}

func (s equivBeatTap) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	resp, err := s.inner.Heartbeat(req)
	if err == nil && resp.Acknowledged && !resp.Reregister && s.arm.aggAudit != nil {
		n := len(req.HealthEvents)
		if n > api.MaxHealthEventsPerBeat {
			n = api.MaxHealthEventsPerBeat
		}
		s.arm.aggAudit.ObserveAck(req.MachineID, s.arm.clock.Now(), n)
	}
	return resp, err
}

// equivHooks is the sabotage battery's seam on the aggregator→
// coordinator link: batch tampers an outgoing window before the wire
// taps see it (a corrupt relay), resp tampers the coordinator's answer
// before the relay and the audit learn from it (an upstream epoch bump
// without running a full replicated failover).
type equivHooks struct {
	batch func(*api.AggregatedBeat)
	resp  func(*api.AggregatedBeatResponse)
}

// equivUpstream is the aggregator→coordinator link with the audit's
// wire taps and the optional saboteur hooks (nil means honest relay).
type equivUpstream struct {
	arm   *equivArm
	id    string
	hooks *equivHooks
}

func (u equivUpstream) IngestAggregated(b api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	if u.hooks != nil && u.hooks.batch != nil {
		u.hooks.batch(&b)
	}
	if a := u.arm.aggAudit; a != nil {
		a.ObserveForward(u.id, b.LeaderEpoch, b.WindowSeq)
	}
	resp, err := u.arm.coord.IngestAggregated(b)
	if err != nil {
		return resp, err
	}
	if u.hooks != nil && u.hooks.resp != nil {
		u.hooks.resp(&resp)
	}
	if u.arm.aggAudit != nil {
		u.arm.aggAudit.ObserveAggEpoch(u.id, resp.LeaderEpoch)
	}
	return resp, err
}

// equivSecret pins the token authority: with the same secret and the
// same clocks, both arms mint byte-identical tokens.
var equivSecret = []byte("aggregation-equivalence-battery!")

// newEquivArm builds one arm with nodes single-GPU agents. aggCount 0
// is the direct arm; otherwise agents are assigned round-robin across
// aggCount relays and the aggregation audit attaches. hooks, when
// non-nil, sabotages the upstream link.
func newEquivArm(t *testing.T, nodes, aggCount int, hooks *equivHooks) *equivArm {
	t.Helper()
	arm := &equivArm{
		clock:    simclock.NewSim(Epoch),
		store:    db.New(0),
		paused:   make([]bool, nodes),
		departed: make([]bool, nodes),
	}
	bus := eventbus.New(1024)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	coord, err := core.New(core.Config{
		HeartbeatInterval: time.Minute,
		AuthSecret:        equivSecret,
	}, arm.clock, arm.store, ckpts, bus)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	arm.coord = coord
	arm.beatAudit, _ = invariant.NewBeatAudit(arm.store)
	if aggCount > 0 {
		arm.aggAudit, _ = invariant.NewAggAudit(arm.store)
		for i := 0; i < aggCount; i++ {
			id := fmt.Sprintf("agg-%02d", i)
			arm.aggs = append(arm.aggs, aggregator.New(aggregator.Config{
				ID: id, FlushInterval: 30 * time.Second,
			}, arm.clock, equivUpstream{arm: arm, id: id, hooks: hooks}))
		}
	}
	for i := 0; i < nodes; i++ {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(gpu.RTX3090), 0, 0)
		src := gpu.NewFakeHealthSource()
		arm.health = append(arm.health, src)
		ag := agent.New(agent.Config{
			MachineID: fmt.Sprintf("eq-%02d", i), Kernel: "5.15",
			ProgressTick: 30 * time.Second, Health: src,
			// Fleet telemetry cadence: samples every 4th beat. Identical
			// in both arms — the knob changes what agents send, and the
			// battery proves the tiers agree on whatever that is.
			TelemetryEvery: 4,
		}, arm.clock, rt, ckpts, bus, coord)
		if len(arm.aggs) > 0 {
			g := arm.aggs[i%len(arm.aggs)]
			ag.SetAggregator(g.ID(), equivBeatTap{inner: g, arm: arm})
		}
		arm.agents = append(arm.agents, ag)
		arm.register(t, i)
	}
	return arm
}

func (arm *equivArm) register(t *testing.T, i int) {
	t.Helper()
	ag := arm.agents[i]
	resp, err := arm.coord.Register(ag.RegisterRequest("inproc://"+ag.MachineID(), 1<<40), core.LocalAgent{A: ag})
	if err != nil {
		t.Fatalf("register %s: %v", ag.MachineID(), err)
	}
	ag.SetToken(resp.Token)
	ag.ObserveEpoch(resp.LeaderEpoch)
	if arm.aggAudit != nil {
		arm.aggAudit.ObserveRegister(ag.MachineID(), arm.clock.Now())
	}
}

// play drives the schedule: ops, beats, then a full-interval advance
// that drains every window before the next round's churn.
func (arm *equivArm) play(t *testing.T, rounds []equivRound) {
	t.Helper()
	direct := equivBeatTap{inner: arm.coord, arm: arm}
	for r, op := range rounds {
		for _, i := range op.depart {
			arm.agents[i].Depart(api.DepartTemporary, 0)
			arm.departed[i], arm.paused[i] = true, false
		}
		for _, i := range op.rejoin {
			arm.agents[i].Return()
			arm.register(t, i)
			arm.departed[i] = false
		}
		for _, i := range op.pause {
			if arm.paused[i] {
				arm.agents[i].Resume()
			} else {
				arm.agents[i].Pause()
			}
			arm.paused[i] = !arm.paused[i]
		}
		for i, evs := range op.health {
			if arm.departed[i] {
				continue
			}
			now := arm.clock.Now()
			stamped := make([]gpu.HealthEvent, len(evs))
			copy(stamped, evs)
			for e := range stamped {
				stamped[e].At = now
			}
			arm.health[i].Inject(stamped...)
		}
		for i, ag := range arm.agents {
			if arm.departed[i] {
				continue
			}
			resp, _, err := ag.SendBeat(direct)
			if err != nil {
				t.Fatalf("round %d node %d beat: %v", r, i, err)
			}
			if resp.Reregister {
				t.Fatalf("round %d node %d: unexpected reregister on the quiesced schedule", r, i)
			}
		}
		arm.clock.Advance(time.Minute)
	}
	// Final quiesce: one more interval covers any window armed by the
	// last round's beats.
	arm.clock.Advance(time.Minute)
}

// exportNormalized strips the fields that legitimately differ between
// arms: the LSN watermark counts mutations, and batching deltas is the
// tier's entire point — fewer, fatter commits.
func (arm *equivArm) exportNormalized() []byte {
	st := arm.store.ExportState()
	st.Watermark = 0
	b, err := json.Marshal(st)
	if err != nil {
		panic(err)
	}
	return b
}

func (arm *equivArm) foldedBeats() uint64 {
	var total uint64
	for _, g := range arm.aggs {
		folded, _, _, _ := g.Stats()
		total += folded
	}
	return total
}

func (arm *equivArm) stop() {
	for _, g := range arm.aggs {
		g.Stop()
	}
	arm.coord.Stop()
}

// TestAggregationEquivalenceProperty replays seeded schedules of
// beats, health bursts, pauses and churn through 1–8 rack aggregators
// and through the direct path, and requires byte-identical exported
// state — nodes (liveness timestamps and health scores), jobs,
// allocations and telemetry samples — plus clean beat-delta and
// aggregation audits on every run.
func TestAggregationEquivalenceProperty(t *testing.T) {
	const nodes, roundCount = 12, 36
	for aggCount := 1; aggCount <= 8; aggCount++ {
		seed := int64(1000 + aggCount)
		t.Run(fmt.Sprintf("aggs=%d/seed=%d", aggCount, seed), func(t *testing.T) {
			rounds := genEquivRounds(seed, nodes, roundCount)

			direct := newEquivArm(t, nodes, 0, nil)
			defer direct.stop()
			direct.play(t, rounds)

			agged := newEquivArm(t, nodes, aggCount, nil)
			defer agged.stop()
			agged.play(t, rounds)

			if folded := agged.foldedBeats(); folded == 0 {
				t.Fatal("aggregated arm folded no beats — the property ran without exercising the tier")
			}

			want, got := direct.exportNormalized(), agged.exportNormalized()
			if string(want) != string(got) {
				for _, v := range invariant.CheckEquivalence(direct.store.ExportState(), agged.store.ExportState()) {
					t.Errorf("table diff: %s", v.Detail)
				}
				t.Fatalf("exported state diverged: direct %d bytes, aggregated %d bytes", len(want), len(got))
			}
			for _, v := range direct.beatAudit.Check(direct.store) {
				t.Errorf("direct arm beat audit: %s", v.Detail)
			}
			for _, v := range agged.beatAudit.Check(agged.store) {
				t.Errorf("aggregated arm beat audit: %s", v.Detail)
			}
			// Strict: at a quiescent point the tier owes zero lag.
			for _, v := range agged.aggAudit.Check(agged.store, 0) {
				t.Errorf("aggregation audit: %s", v.Detail)
			}
		})
	}
}
