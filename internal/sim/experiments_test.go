package sim

import (
	"strings"
	"testing"
	"time"

	"gpunion/internal/simclock"
)

// newSimClock is a test helper for arrival-process tests.
func newSimClock() *simclock.Sim { return simclock.NewSim(Epoch) }

func TestFig2ShortRunShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 runs a full campus week")
	}
	res, err := RunFig2(Fig2Config{Weeks: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: GPUnion roughly doubles utilization (34→67%).
	if res.BaselineUtilization < 0.2 || res.BaselineUtilization > 0.5 {
		t.Errorf("baseline utilization = %.2f, want ~0.34", res.BaselineUtilization)
	}
	if res.GPUnionUtilization < 0.5 || res.GPUnionUtilization > 0.85 {
		t.Errorf("GPUnion utilization = %.2f, want ~0.67", res.GPUnionUtilization)
	}
	if res.GPUnionUtilization <= res.BaselineUtilization {
		t.Error("GPUnion did not improve utilization")
	}
	if res.GPUnionUtilization < res.BaselineUtilization*1.5 {
		t.Errorf("improvement %.2f→%.2f below the paper's ~2× shape",
			res.BaselineUtilization, res.GPUnionUtilization)
	}
	// Interactive sessions increase (paper: +40%).
	if res.GPUnionSessions <= res.BaselineSessions {
		t.Errorf("sessions %d → %d, want an increase", res.BaselineSessions, res.GPUnionSessions)
	}
	if len(res.WeeklyBaseline) != 1 || len(res.WeeklyGPUnion) != 1 {
		t.Errorf("weekly series lengths %d, %d", len(res.WeeklyBaseline), len(res.WeeklyGPUnion))
	}
	if res.LostCrossLabJobs == 0 {
		t.Error("manual coordination lost no cross-lab demand")
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(Fig3Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Scheduled departures migrate within the deadline at a high rate
	// (paper: 94%).
	if res.Scheduled.MigrationSuccessRate < 0.85 {
		t.Errorf("scheduled success = %.2f, want >= 0.85", res.Scheduled.MigrationSuccessRate)
	}
	// Scheduled departures lose (almost) no work: the final checkpoint
	// captures progress at departure.
	if res.Scheduled.MeanWorkLost > time.Minute {
		t.Errorf("scheduled work lost = %v, want ~0", res.Scheduled.MeanWorkLost)
	}
	// Emergency departures lose work bounded by the checkpoint interval
	// (paper: "work loss equivalent to the checkpoint interval").
	if res.Emergency.Displaced > 0 {
		if res.Emergency.MeanWorkLost <= 0 {
			t.Error("emergency departures lost no work")
		}
		if res.Emergency.MeanWorkLost > res.CheckpointInterval {
			t.Errorf("emergency work lost %v exceeds checkpoint interval %v",
				res.Emergency.MeanWorkLost, res.CheckpointInterval)
		}
	}
	// Displaced jobs migrate back when the provider returns (paper: 67%).
	if res.MigratedBackFraction < 0.4 || res.MigratedBackFraction > 1.0 {
		t.Errorf("migrate-back fraction = %.2f, want ~0.67", res.MigratedBackFraction)
	}
	for name, s := range map[string]ScenarioResult{
		"scheduled": res.Scheduled, "emergency": res.Emergency, "temporary": res.Temporary,
	} {
		if s.Events == 0 {
			t.Errorf("%s: no events simulated", name)
		}
	}
}

func TestFig3WorkLossScalesWithCheckpointInterval(t *testing.T) {
	short, err := RunFig3(Fig3Config{Seed: 7, CheckpointInterval: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunFig3(Fig3Config{Seed: 7, CheckpointInterval: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if short.Emergency.Displaced == 0 || long.Emergency.Displaced == 0 {
		t.Skip("no emergency displacements in one arm")
	}
	if long.Emergency.MeanWorkLost <= short.Emergency.MeanWorkLost {
		t.Errorf("work lost should grow with the interval: 5m→%v, 30m→%v",
			short.Emergency.MeanWorkLost, long.Emergency.MeanWorkLost)
	}
}

func TestTrainingImpactShape(t *testing.T) {
	rows, err := RunTrainingImpact(ImpactConfig{MaxInterruptions: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sawMemoryIntensive := false
	for _, r := range rows {
		if r.Interruptions == 0 && r.IncreasePct() != 0 {
			t.Errorf("zero interruptions inflated time by %.1f%%", r.IncreasePct())
		}
		// The paper's headline: 2–4 interruptions cost only single-digit
		// percentages.
		if r.Interruptions >= 2 && r.Interruptions <= 4 {
			if pct := r.IncreasePct(); pct < 0.5 || pct > 12 {
				t.Errorf("%s k=%d increase = %.1f%%, want low single digits",
					r.Class, r.Interruptions, pct)
			}
		}
		if r.MemoryIntensive {
			sawMemoryIntensive = true
		}
	}
	if !sawMemoryIntensive {
		t.Error("study omitted the memory-intensive subject")
	}
}

func TestTrafficIncrementalUnderTwoPercent(t *testing.T) {
	res, err := RunTraffic(TrafficConfig{Hours: 12, Jobs: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakUtilization >= 0.02 {
		t.Errorf("incremental peak = %.3f%%, paper claims < 2%%", 100*res.PeakUtilization)
	}
	if res.Checkpoints == 0 || res.TotalCheckpointBytes == 0 {
		t.Fatalf("no checkpoint traffic recorded: %+v", res)
	}
}

func TestTrafficFullCheckpointsCostMore(t *testing.T) {
	inc, err := RunTraffic(TrafficConfig{Hours: 8, Jobs: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunTraffic(TrafficConfig{Hours: 8, Jobs: 20, Seed: 5, ForceFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalCheckpointBytes <= inc.TotalCheckpointBytes*2 {
		t.Errorf("full totals %d should dwarf incremental %d",
			full.TotalCheckpointBytes, inc.TotalCheckpointBytes)
	}
	if full.MeanUtilization <= inc.MeanUtilization {
		t.Error("full checkpointing should consume more bandwidth")
	}
}

func TestScalabilityTrends(t *testing.T) {
	rows, err := RunScalability(ScalabilityConfig{
		NodeCounts:        []int{10, 50, 200},
		DecisionsPerPoint: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sub-second scheduling at 50 nodes (paper's operating point).
	for _, r := range rows {
		if r.Nodes <= 50 && !r.SubSecond {
			t.Errorf("n=%d not sub-second: p95 = %v", r.Nodes, r.P95SchedulingLatency)
		}
		if r.DBOpsPerSecond <= 0 || r.RequiredDBOpsPerSecond <= 0 {
			t.Errorf("n=%d missing throughput figures: %+v", r.Nodes, r)
		}
	}
	// Headroom shrinks as the campus grows (the paper's bottleneck
	// direction beyond 200 nodes).
	if rows[2].Headroom >= rows[0].Headroom {
		t.Errorf("headroom should shrink with scale: %v → %v",
			rows[0].Headroom, rows[2].Headroom)
	}
	// Scheduling cost grows with node count.
	if rows[2].MeanSchedulingLatency <= rows[0].MeanSchedulingLatency {
		t.Error("scheduling latency should grow with node count")
	}
}

// TestCoalescedThroughputAt800 pins the write-path acceptance bar: at
// the 800-node sweep point, committing heartbeats as per-shard delta
// batches must yield at least 3x the throughput of per-beat commits.
// The 2000-node point — reachable only once steady-state write cost
// stopped scaling with fleet size — must record a speedup at least as
// large.
func TestCoalescedThroughputAt800(t *testing.T) {
	rows, err := RunScalability(ScalabilityConfig{
		NodeCounts:        []int{800, 2000},
		DecisionsPerPoint: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CoalescedBeatsPerSecond <= 0 {
			t.Fatalf("n=%d: no coalesced throughput recorded: %+v", r.Nodes, r)
		}
		if r.CoalesceSpeedup < 3 {
			t.Errorf("n=%d: coalesced write path %.0f beats/s vs %.0f per-beat commits/s — %.2fx, want ≥3x",
				r.Nodes, r.CoalescedBeatsPerSecond, r.DBOpsPerSecond, r.CoalesceSpeedup)
		}
	}
}

// TestAggregatedIngressReduction pins the aggregation tier's acceptance
// bar: at 2000 nodes, routing beats through per-rack relays must cut
// coordinator ingress requests/sec by at least 5x versus every agent
// beating the coordinator directly — and the win must keep growing past
// 2000, since folded ingress scales with racks and telemetry cadence
// while direct ingress scales with nodes.
func TestAggregatedIngressReduction(t *testing.T) {
	rows, err := RunScalability(ScalabilityConfig{
		NodeCounts:        []int{2000, 5000},
		DecisionsPerPoint: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AggIngressPerSecond <= 0 || r.DirectIngressPerSecond <= 0 {
			t.Fatalf("n=%d: missing ingress figures: %+v", r.Nodes, r)
		}
		if r.IngressReduction < 5 {
			t.Errorf("n=%d: aggregated ingress %.1f req/s vs direct %.1f req/s — %.2fx, want ≥5x",
				r.Nodes, r.AggIngressPerSecond, r.DirectIngressPerSecond, r.IngressReduction)
		}
		t.Logf("n=%d racks=%d: direct %.1f req/s → aggregated %.1f req/s (%.1fx)",
			r.Nodes, r.AggRacks, r.DirectIngressPerSecond, r.AggIngressPerSecond, r.IngressReduction)
	}
	if rows[1].IngressReduction <= rows[0].IngressReduction {
		t.Errorf("reduction should grow with fleet size: %.2fx at %d → %.2fx at %d",
			rows[0].IngressReduction, rows[0].Nodes, rows[1].IngressReduction, rows[1].Nodes)
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("Table 1 rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		for _, cell := range []string{r.Criterion, r.OpenStack, r.CloudStack, r.OpenNebula, r.Kubernetes, r.GPUnion} {
			if cell == "" {
				t.Errorf("row %q has an empty cell", r.Criterion)
			}
		}
	}
	// Headline differentiators from the paper.
	byCriterion := map[string]ComparisonRow{}
	for _, r := range rows {
		byCriterion[r.Criterion] = r
	}
	if byCriterion["Provider Autonomy"].GPUnion != "Full" {
		t.Error("GPUnion provider autonomy must be Full")
	}
	if byCriterion["Voluntary Participation"].GPUnion != "Yes" {
		t.Error("GPUnion voluntary participation must be Yes")
	}
	if byCriterion["Fault Tolerance Model"].GPUnion != "Workload" {
		t.Error("GPUnion fault tolerance must be Workload-level")
	}
}

func TestGPUnionClaimsCoverDifferentiators(t *testing.T) {
	claims := GPUnionClaims()
	for _, key := range []string{"Provider Autonomy", "Voluntary Participation", "Fault Tolerance Model"} {
		if claims[key] == "" {
			t.Errorf("claim %q has no implementation pointer", key)
		}
	}
}

func TestWriteTable1Renders(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"GPUnion", "Provider Autonomy", "Kubernetes", "Campus LANs"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Errorf("rendered table has %d lines", lines)
	}
}
