package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/chaos"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/monitor"
	"gpunion/internal/netsim"
	"gpunion/internal/obs"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
	"gpunion/internal/workload"
)

// ChaosConfig assembles a full platform — coordinator, agents, LAN
// model, optionally a write-ahead log — and subjects it to a seeded
// fault schedule while auditing the invariants in internal/invariant.
type ChaosConfig struct {
	// Defs is the fleet (default: the paper campus).
	Defs []NodeDef
	// Seed drives schedule generation and traffic.
	Seed int64
	// Spec parameterises fault composition. Duration defaults to 8 h;
	// Nodes is filled from Defs.
	Spec chaos.Spec
	// Jobs is the sustained training-job population (default 16).
	Jobs int
	// HeartbeatInterval between agent reports (default 1 min).
	HeartbeatInterval time.Duration
	// ProgressTick is the agent work-advance granularity (default 1 min).
	ProgressTick time.Duration
	// EnableWAL attaches a write-ahead log (required for WAL-fault and
	// coordinator-crash injections).
	EnableWAL bool
	// WALDir is the log directory (empty = temp dir, removed after).
	WALDir string
	// AuditEvery is the periodic invariant-audit cadence (default 5 min).
	AuditEvery time.Duration
	// Drain runs the platform past the last fault so in-flight
	// migrations settle before the final audit (default 2 h).
	Drain time.Duration
	// WithNetwork attaches the LAN model; it is also enabled
	// automatically when the spec sets a latency-spike rate.
	WithNetwork bool
	// NewStore builds the system database (default: the sharded
	// db.New). The same factory boots the successor store after a
	// coordinator crash, so baseline-parity runs (db.NewSingleMutex)
	// recover onto their own store type.
	NewStore func() db.Store
	// Replicated runs the coordinator as a replicated pair: a leader
	// holding a lease from an in-process arbiter plus a warm standby
	// applying the leader's log via WAL shipping. Implies EnableWAL.
	// Required for the LeaderKills / SplitBrains fault families.
	Replicated bool
	// Aggregators interposes a rack aggregation tier of this many
	// relays (internal/aggregator): agents are assigned round-robin and
	// their beats route aggregator-first with direct fallback, while
	// the aggregation-equivalence audit watches both ends. Required for
	// the AggCrashes / AggPartitions fault families. Zero disables the
	// tier, leaving the classic direct heartbeat path untouched.
	Aggregators int
}

// ChaosResult is what one chaos run observed.
type ChaosResult struct {
	// Schedule is the injected fault sequence (replayable evidence).
	Schedule chaos.Schedule
	// Report carries per-fault observations and every invariant
	// violation, including the final post-drain audit.
	Report *chaos.Report
	// Violations flattens Report.Violations plus end-of-run liveness
	// checks (stuck migrations).
	Violations []invariant.Violation
	// SubmittedJobs / CompletedJobs measure useful work done under
	// chaos.
	SubmittedJobs int
	CompletedJobs int
	// Recoveries counts coordinator kill/restart cycles performed.
	Recoveries int
	// Failovers counts completed leader handoffs (a standby promoted
	// and took the lease) in Replicated runs.
	Failovers int
	// WALFaultsInjected counts disk faults actually delivered.
	WALFaultsInjected int
	// CkptFaultsInjected counts checkpoint blobs actually damaged;
	// CkptCorruptionsDetected counts frames the checkpoint store's CRC
	// verification rejected (the detector firing on that damage).
	CkptFaultsInjected      int
	CkptCorruptionsDetected int
	// CkptReadFaultsInjected counts reads that returned rotted copies
	// during read-rot windows (stored bytes stayed intact).
	CkptReadFaultsInjected int
	// DupReplaysDelivered counts control messages actually replayed
	// during duplicate-delivery windows (each verified side-effect
	// free), by message kind ("heartbeat", "job-update", "launch").
	DupReplaysDelivered map[string]int
	// DurabilityLost reports whether any mutation failed to log during
	// a fault window (expected under WAL-fault schedules; recovery
	// equivalence is then checked via a post-heal checkpoint).
	DurabilityLost bool
	// AggFoldedBeats / AggForwards count, across the aggregation tier,
	// the no-op beats acked locally (each one a coordinator request
	// saved) and the upstream batch requests actually sent.
	AggFoldedBeats uint64
	AggForwards    uint64
	// Trace is the flight recorder's retained window: every platform
	// event, fault injection, and audited violation as simclock-
	// timestamped entries. TraceDropped counts ring-buffer evictions.
	Trace        []obs.Event
	TraceDropped uint64
	// MetricsText is the surviving coordinator's end-of-run metrics
	// exposition (after a final derived-gauge refresh).
	MetricsText string
}

// RunChaos executes one seeded chaos scenario.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	var res ChaosResult
	if len(cfg.Defs) == 0 {
		cfg.Defs = PaperCampus()
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 16
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Minute
	}
	if cfg.ProgressTick <= 0 {
		cfg.ProgressTick = time.Minute
	}
	if cfg.Spec.Duration <= 0 {
		cfg.Spec.Duration = 8 * time.Hour
	}
	if cfg.AuditEvery <= 0 {
		cfg.AuditEvery = 5 * time.Minute
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 2 * time.Hour
	}
	if len(cfg.Spec.Nodes) == 0 {
		for _, d := range cfg.Defs {
			cfg.Spec.Nodes = append(cfg.Spec.Nodes, d.ID)
		}
	}
	if cfg.NewStore == nil {
		cfg.NewStore = func() db.Store { return db.New(0) }
	}
	if cfg.Replicated {
		// Replication is WAL shipping; a replicated pair without a log
		// has nothing to ship.
		cfg.EnableWAL = true
	}
	if cfg.Aggregators > 0 && len(cfg.Spec.Aggregators) == 0 {
		for i := 0; i < cfg.Aggregators; i++ {
			cfg.Spec.Aggregators = append(cfg.Spec.Aggregators, aggName(i))
		}
	}

	h, err := newChaosHarness(cfg)
	if err != nil {
		return res, err
	}
	defer h.stop()

	sched := chaos.Generate(cfg.Spec, cfg.Seed)
	h.startTraffic(cfg.Seed + 1)
	eng := chaos.NewEngine(h.clock, h)
	eng.SetRecorder(h.trace)
	rep := eng.Execute(sched, cfg.AuditEvery, cfg.Drain)

	res.Schedule = sched
	res.Report = rep
	res.Violations = append(res.Violations, rep.Violations...)
	// End-of-run liveness: after the drain, no job may be wedged in
	// Migrating — a failed transfer must have requeued it.
	store := h.currentStore()
	for _, j := range store.JobsInState(db.JobMigrating) {
		res.Violations = append(res.Violations, invariant.Violation{
			Rule:   "stuck-migrating",
			Detail: fmt.Sprintf("job %s still migrating %v after the last fault", j.ID, cfg.Drain),
		})
	}
	res.SubmittedJobs = h.submitted
	res.CompletedJobs = store.CountJobsInState(db.JobCompleted)
	res.Recoveries = h.recoveries
	res.Failovers = h.failovers
	if h.fs != nil {
		res.WALFaultsInjected = h.fs.Injected()
	}
	res.CkptFaultsInjected = h.blob.Injected()
	res.CkptReadFaultsInjected = h.blob.ReadInjected()
	res.CkptCorruptionsDetected = h.ckpts.CorruptionsDetected()
	h.mu.Lock()
	res.DupReplaysDelivered = h.dupReplays
	h.dupReplays = nil
	h.mu.Unlock()
	res.DurabilityLost = h.sawDurabilityLoss
	for _, id := range h.aggIDs {
		folded, _, forwards, _ := h.aggs[id].Stats()
		res.AggFoldedBeats += folded
		res.AggForwards += forwards
	}
	res.Trace = h.trace.Events()
	res.TraceDropped = h.trace.Dropped()
	if text, err := h.currentCoord().MetricsSnapshot(); err == nil {
		res.MetricsText = text
	}
	return res, nil
}

// chaosHarness implements chaos.Platform over the real components. It
// also implements agent.Notifier, routing notifications to whichever
// coordinator currently leads (and dropping announcements from
// partitioned nodes).
type chaosHarness struct {
	cfg   ChaosConfig
	clock *simclock.Sim
	bus   *eventbus.Bus
	// trace is the run's flight recorder: attached to the shared bus
	// once, handed to every coordinator incarnation via coordCfg.Trace,
	// and fed fault/violation annotations by the chaos engine. One
	// recorder spans crashes and failovers, so the exported timeline is
	// continuous across leadership changes.
	trace    *obs.Recorder
	blob     *chaos.FaultBlobStore
	ckpts    *checkpoint.Store
	net      *netsim.Network
	fs       *chaos.FaultFS
	dir      string
	ownDir   bool
	coordCfg core.Config
	nodeIDs  []string
	// skewed holds each agent's adjustable clock (the skew seam).
	skewed map[string]*simclock.Skewed

	mu          sync.Mutex
	store       db.Store
	coord       *core.Coordinator
	mgr         *wal.Manager
	agents      map[string]*agent.Agent
	crashed     map[string]bool
	partitioned map[string]bool
	// dataPartitioned nodes have lost the data plane too: checkpoint
	// transfers fail in both directions, on top of the control cut.
	dataPartitioned map[string]bool
	// skews mirrors the currently injected clock offsets, so audits
	// know which nodes' only fault is a bounded skew.
	skews     map[string]time.Duration
	origLinks map[string]netsim.NodeLink
	// dupOn marks an open duplicate-delivery window; dupCounter varies
	// the replay count; dupReplays tallies replays by message kind;
	// dupViolations accumulates idempotency breaches found between
	// audits.
	dupOn         bool
	dupCounter    int
	dupReplays    map[string]int
	dupViolations []invariant.Violation
	// beatAudit folds the serving store's node-image and beat-delta
	// stream to verify beat-delta equivalence at every audit point;
	// healthAudit does the same for the health-fold stream. Both are
	// re-attached whenever a successor store is installed.
	beatAudit         *invariant.BeatAudit
	beatAuditCancel   func()
	healthAudit       *invariant.HealthAudit
	healthAuditCancel func()
	// healthSrcs holds each agent's injectable health source (the
	// gray-degrade seam); grayOn marks nodes with an open gray window
	// (the pump re-injects events every heartbeat interval); lossOn
	// marks nodes whose heartbeats drop probabilistically (partial
	// loss); lossRng drives those drops, consumed only inside loss
	// windows so other schedules' determinism is untouched.
	healthSrcs map[string]*gpu.FakeHealthSource
	grayOn     map[string]bool
	lossOn     map[string]bool
	lossRng    *rand.Rand
	// aggs are the rack aggregators (cfg.Aggregators > 0); aggIDs is
	// their sorted identity list and aggCut the injected upstream
	// partitions. aggAudit folds both ends of the tier — agent-side
	// acknowledgements, upstream forwards, committed health folds — for
	// the aggregation-equivalence invariant; it persists across
	// coordinator recoveries (only its store subscription re-binds).
	aggs           map[string]*aggregator.Aggregator
	aggIDs         []string
	aggCut         map[string]bool
	aggAudit       *invariant.AggAudit
	aggAuditCancel func()
	// unhealthySince records when each node was first observed below
	// the unhealthy threshold, feeding the degraded-node-drained grace.
	unhealthySince map[string]time.Time
	// graceUntil suppresses agent-vs-store phantom checks right after a
	// heal or restart, while reconciliation heartbeats are in flight.
	graceUntil        time.Time
	recoveries        int
	submitted         int
	sawDurabilityLoss bool

	// --- Replicated mode (cfg.Replicated) ---

	// lease is the in-process arbiter every replica competes for.
	lease *core.Lease
	// leaderLog audits lease grants and write acceptances;
	// leaderVsSeen marks how many of its violations earlier audits
	// already reported.
	leaderLog    *invariant.LeaderLog
	leaderVsSeen int
	// replViolations collects failover-audit findings (lost-acked
	// checks, fence probes) for the next ExtraChecks drain.
	replViolations []invariant.Violation
	replicaSeq     int
	// repl is the replica currently installed as h.coord.
	repl *replica
	// standbyStore is the warm standby's database; follower applies
	// shipped records into it; shipper tails the leader's log.
	standbyStore db.Store
	follower     *wal.Follower
	shipper      *wal.Shipper
	// splitOpen marks an open split-brain window; the zombie* fields
	// hold the isolated ex-leader so heal can probe and dispose of it.
	splitOpen   bool
	zombie      *replica
	zombieMgr   *wal.Manager
	zombieEpoch uint64
	zombieStore db.Store
	// pendingTakeover is a successor still waiting out the lease grace.
	pendingTakeover *takeover
	// extraDirs are successor WAL directories to remove on stop.
	extraDirs []string
	failovers int
}

// replica bundles one lease-competing coordinator with its two fault
// seams: the cuttable link to the arbiter and the adjustable clock.
type replica struct {
	coord *core.Coordinator
	id    string
	cut   *chaosLeaseClient
	skew  *simclock.Skewed
}

// takeover is a standby promotion in flight: the successor exists and
// retries TryLead until the dead (or fenced) leader's lease grace runs
// out, then finishTakeover installs it.
type takeover struct {
	rep       *replica
	deadStore db.Store
	aborted   bool
}

// chaosLeaseClient wraps the arbiter with a cuttable link: a cut client
// models the leader partitioned from the coordination service — every
// call fails at the transport, and the replica must live off its cached
// grant until that lapses.
type chaosLeaseClient struct {
	mu    sync.Mutex
	inner core.LeaseClient
	cut   bool
}

var errLeaseUnreachable = fmt.Errorf("chaos: lease arbiter unreachable")

func (c *chaosLeaseClient) Cut(cut bool) {
	c.mu.Lock()
	c.cut = cut
	c.mu.Unlock()
}

func (c *chaosLeaseClient) isCut() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}

func (c *chaosLeaseClient) Acquire(holder string) (uint64, time.Time, error) {
	if c.isCut() {
		return 0, time.Time{}, errLeaseUnreachable
	}
	return c.inner.Acquire(holder)
}

func (c *chaosLeaseClient) Renew(holder string, epoch uint64) (time.Time, error) {
	if c.isCut() {
		return time.Time{}, errLeaseUnreachable
	}
	return c.inner.Renew(holder, epoch)
}

func (c *chaosLeaseClient) Leader() (string, uint64) {
	if c.isCut() {
		return "", 0
	}
	return c.inner.Leader()
}

// chaosAuthSecret keeps issued credentials valid across coordinator
// restarts, as the real daemon does by persisting its secret next to
// the log.
var chaosAuthSecret = []byte("gpunion-chaos-harness-auth-secret")

func newChaosHarness(cfg ChaosConfig) (*chaosHarness, error) {
	// The checkpoint store's backing blobs sit behind the corruption
	// seam: injected bit flips and truncations land in the real stored
	// bytes, and the store's CRC frames must catch them on read.
	blob := chaos.NewFaultBlobStore(storage.NewMemStore(0))
	h := &chaosHarness{
		cfg:             cfg,
		clock:           simclock.NewSim(Epoch),
		bus:             eventbus.New(4096),
		blob:            blob,
		ckpts:           checkpoint.NewStore(blob),
		skewed:          make(map[string]*simclock.Skewed),
		agents:          make(map[string]*agent.Agent),
		crashed:         make(map[string]bool),
		partitioned:     make(map[string]bool),
		dataPartitioned: make(map[string]bool),
		skews:           make(map[string]time.Duration),
		origLinks:       make(map[string]netsim.NodeLink),
		healthSrcs:      make(map[string]*gpu.FakeHealthSource),
		aggs:            make(map[string]*aggregator.Aggregator),
		aggCut:          make(map[string]bool),
		grayOn:          make(map[string]bool),
		lossOn:          make(map[string]bool),
		lossRng:         rand.New(rand.NewSource(cfg.Seed + 2)),
		unhealthySince:  make(map[string]time.Time),
	}
	for _, d := range cfg.Defs {
		h.nodeIDs = append(h.nodeIDs, d.ID)
	}
	sort.Strings(h.nodeIDs)
	// A deep ring: chaos runs are the flight recorder's primary
	// customer, and fault localization needs the whole run retained.
	h.trace = obs.NewRecorder(h.clock, 1<<16)
	h.trace.Attach(h.bus)

	if cfg.WithNetwork || cfg.Spec.LatencySpikesPerDay > 0 {
		h.net = netsim.New(10 * netsim.Gbps)
		h.net.AddNode(netsim.NodeLink{Name: "coordinator", Access: 10 * netsim.Gbps, Latency: 150 * time.Microsecond})
		for _, d := range cfg.Defs {
			link := netsim.NodeLink{Name: d.ID, Access: netsim.Gbps, Latency: 250 * time.Microsecond}
			h.net.AddNode(link)
			h.origLinks[d.ID] = link
		}
	}
	storageNode := ""
	if h.net != nil {
		storageNode = "coordinator"
	}
	h.coordCfg = core.Config{
		HeartbeatInterval: cfg.HeartbeatInterval,
		BatchSize:         8,
		AuthSecret:        chaosAuthSecret,
		Net:               h.net,
		StorageNode:       storageNode,
		Trace:             h.trace,
	}

	store := cfg.NewStore()
	if cfg.EnableWAL {
		dir := cfg.WALDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gpunion-chaos-wal-*")
			if err != nil {
				return nil, err
			}
			dir = tmp
			h.ownDir = true
		}
		h.dir = dir
		h.fs = chaos.NewFaultFS()
		walCfg := wal.Config{
			FS:            h.fs,
			OnAppendError: func(error) { h.noteDurabilityLoss() },
		}
		if cfg.Replicated {
			// Semi-synchronous replication: the hook runs after the
			// record is durable locally and before the store returns, so
			// the standby holds every mutation any client was acked.
			walCfg.OnDurable = h.onLeaderDurable
		}
		mgr, err := wal.Open(dir, store, walCfg)
		if err != nil {
			return nil, err
		}
		h.mgr = mgr
		// Async checkpoints on the simulated clock (the Snapshotter's
		// own ticker is wall-clock): one per simulated hour.
		var checkpointLoop func()
		checkpointLoop = func() {
			if m := h.currentMgr(); m != nil {
				_ = m.Checkpoint()
			}
			if h.clock.Now().Before(Epoch.Add(cfg.Spec.Duration + cfg.Drain)) {
				h.clock.AfterFunc(time.Hour, checkpointLoop)
			}
		}
		h.clock.AfterFunc(time.Hour, checkpointLoop)
	}

	if cfg.Replicated {
		// 30 s grants against a 2 min re-grant grace: a dead leader's
		// slot stays fenced for at most 2.5 min of simulated time before
		// a standby can win it.
		h.lease = core.NewLease(h.clock, 30*time.Second, 2*time.Minute)
		h.leaderLog = invariant.NewLeaderLog()
		rep, err := h.newReplica(store)
		if err != nil {
			return nil, err
		}
		h.store, h.coord, h.repl = store, rep.coord, rep
		if !rep.coord.TryLead() {
			return nil, fmt.Errorf("chaos: initial replica failed to take the free lease")
		}
		h.leaderLog.RecordTerm(rep.coord.Epoch(), rep.id)
		h.standbyStore = cfg.NewStore()
		h.follower = wal.NewFollower(h.standbyStore)
		h.shipper = wal.NewShipper(h.dir)
	} else {
		coord, err := core.New(h.coordCfg, h.clock, store, h.ckpts, h.bus)
		if err != nil {
			return nil, err
		}
		h.store, h.coord = store, coord
	}
	if h.mgr != nil {
		// WAL latency/batch instrumentation lands on the serving
		// coordinator's registry.
		_ = h.mgr.Writer().Instrument(h.coord.Metrics())
	}
	h.attachStreamAudits(h.store)

	// The aggregation tier: rack relays folding their agents' no-op
	// beats, each forwarding through the upstream seam (which applies
	// the partition fault and feeds the equivalence audit). A flush
	// window of half the heartbeat interval keeps worst-case liveness
	// lag under one beat.
	for i := 0; i < cfg.Aggregators; i++ {
		id := aggName(i)
		h.aggs[id] = aggregator.New(aggregator.Config{
			ID:            id,
			FlushInterval: cfg.HeartbeatInterval / 2,
		}, h.clock, aggUpstream{h: h, id: id})
		h.aggIDs = append(h.aggIDs, id)
	}

	for i, d := range cfg.Defs {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(d.GPUs...), 0, 0)
		// Each agent runs on its own skewable clock (the clock-skew
		// seam) and writes checkpoints through a per-node gate that a
		// data-plane partition severs.
		skewed := simclock.NewSkewed(h.clock)
		h.skewed[d.ID] = skewed
		src := gpu.NewFakeHealthSource()
		h.healthSrcs[d.ID] = src
		acfg := agent.Config{
			MachineID: d.ID, Kernel: "5.15", ProgressTick: cfg.ProgressTick,
			Health: src,
		}
		if len(h.aggIDs) > 0 {
			// Fleet telemetry cadence: samples every 4th beat, liveness
			// every beat. The off-cadence beats of idle nodes carry no
			// payload, so the rack relay can fold them.
			acfg.TelemetryEvery = 4
		}
		ag := agent.New(acfg, skewed, rt, agentCkptWriter{h: h, id: d.ID}, h.bus, h)
		if len(h.aggIDs) > 0 {
			// Round-robin rack assignment: the agent beats through its
			// relay first and falls back direct when it is unavailable.
			aggID := h.aggIDs[i%len(h.aggIDs)]
			ag.SetAggregator(aggID, aggSender{h: h, id: aggID})
		}
		h.agents[d.ID] = ag
		if err := h.register(ag); err != nil {
			return nil, err
		}
		h.heartbeatLoop(ag)
	}
	return h, nil
}

// aggName is the rack aggregator naming scheme shared by the harness
// and the schedule spec.
func aggName(i int) string { return fmt.Sprintf("agg-%02d", i) }

func (h *chaosHarness) stop() {
	h.currentCoord().Stop()
	h.mu.Lock()
	t := h.pendingTakeover
	if t != nil {
		t.aborted = true
	}
	z := h.zombie
	zMgr := h.zombieMgr
	dirs := h.extraDirs
	h.mu.Unlock()
	if t != nil {
		t.rep.coord.Stop()
	}
	if z != nil {
		z.coord.Stop()
	}
	for _, id := range h.nodeIDs {
		h.agents[id].Stop()
	}
	for _, id := range h.aggIDs {
		h.aggs[id].Stop()
	}
	if m := h.currentMgr(); m != nil {
		_ = m.Close()
	}
	if zMgr != nil && zMgr != h.currentMgr() {
		_ = zMgr.Close()
	}
	if h.ownDir {
		os.RemoveAll(h.dir)
	}
	for _, d := range dirs {
		os.RemoveAll(d)
	}
}

func (h *chaosHarness) currentCoord() *core.Coordinator {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.coord
}

func (h *chaosHarness) currentStore() db.Store {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.store
}

// attachStreamAudits (re)binds the beat-delta and health-fold
// equivalence recorders to the store passed in. Called at quiescent
// installation points — setup, coordinator recovery, takeover
// completion — where no writes race the base snapshots.
func (h *chaosHarness) attachStreamAudits(store db.Store) {
	h.mu.Lock()
	cancelBeat, cancelHealth, cancelAgg := h.beatAuditCancel, h.healthAuditCancel, h.aggAuditCancel
	h.mu.Unlock()
	if cancelBeat != nil {
		cancelBeat()
	}
	if cancelHealth != nil {
		cancelHealth()
	}
	if cancelAgg != nil {
		cancelAgg()
	}
	beat, cb := invariant.NewBeatAudit(store)
	health, ch := invariant.NewHealthAudit(store)
	// The aggregation audit is created once and survives coordinator
	// recoveries: its acknowledged-beat ledger spans store lifetimes,
	// only the mutation subscription re-binds to the successor.
	var agg *invariant.AggAudit
	var ca func()
	if h.cfg.Aggregators > 0 {
		if agg = h.currentAggAudit(); agg == nil {
			agg, ca = invariant.NewAggAudit(store)
		} else {
			ca = agg.Attach(store)
		}
	}
	h.mu.Lock()
	h.beatAudit, h.beatAuditCancel = beat, cb
	h.healthAudit, h.healthAuditCancel = health, ch
	if agg != nil {
		h.aggAudit, h.aggAuditCancel = agg, ca
	}
	h.mu.Unlock()
}

func (h *chaosHarness) currentAggAudit() *invariant.AggAudit {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.aggAudit
}

// observeBeatAck reports one genuinely acknowledged beat to the
// aggregation audit: the instant both tiers stamp an ack with is the
// shared simulated clock's now, and only the events the coordinator
// would actually ingest (the per-beat cap) count toward health
// completeness.
func (h *chaosHarness) observeBeatAck(req api.HeartbeatRequest, resp api.HeartbeatResponse, err error) {
	a := h.currentAggAudit()
	if a == nil || err != nil || !resp.Acknowledged || resp.Reregister {
		return
	}
	n := len(req.HealthEvents)
	if n > api.MaxHealthEventsPerBeat {
		n = api.MaxHealthEventsPerBeat
	}
	a.ObserveAck(req.MachineID, h.clock.Now(), n)
}

func (h *chaosHarness) currentBeatAudit() *invariant.BeatAudit {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.beatAudit
}

func (h *chaosHarness) currentHealthAudit() *invariant.HealthAudit {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.healthAudit
}

func (h *chaosHarness) currentMgr() *wal.Manager {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.mgr
}

func (h *chaosHarness) noteDurabilityLoss() {
	h.mu.Lock()
	h.sawDurabilityLoss = true
	h.mu.Unlock()
}

// newReplica builds a lease-competing coordinator over store, with its
// own cuttable lease client and its own adjustable clock (the seams the
// split-brain fault pulls on).
func (h *chaosHarness) newReplica(store db.Store) (*replica, error) {
	h.mu.Lock()
	h.replicaSeq++
	id := fmt.Sprintf("coord-%d", h.replicaSeq)
	h.mu.Unlock()
	cut := &chaosLeaseClient{inner: h.lease}
	skew := simclock.NewSkewed(h.clock)
	cfg := h.coordCfg
	cfg.Lease = cut
	cfg.ReplicaID = id
	coord, err := core.New(cfg, skew, store, h.ckpts, h.bus)
	if err != nil {
		return nil, err
	}
	return &replica{coord: coord, id: id, cut: cut, skew: skew}, nil
}

// onLeaderDurable runs inside the serving replica's mutation hook,
// after the record hit the log and before the store acks the write: it
// audits the write against the leadership log and ships the tail to the
// standby. Pumping here makes replication semi-synchronous — by the
// time any client observes a mutation, the standby can replay it.
func (h *chaosHarness) onLeaderDurable(db.Mutation) {
	h.mu.Lock()
	rep := h.repl
	store := h.store
	fol, shp := h.follower, h.shipper
	h.mu.Unlock()
	if rep == nil || fol == nil || shp == nil {
		return
	}
	h.leaderLog.RecordWrite(rep.coord.Epoch(), rep.id)
	if err := fol.Pump(shp); err != nil {
		h.mu.Lock()
		h.replViolations = append(h.replViolations, invariant.Violation{
			Rule:   "replication-ship-failed",
			Detail: fmt.Sprintf("shipping acked mutations to the standby: %v", err),
		})
		h.mu.Unlock()
	}
	// Export the post-pump shipping backlog. Records lag is the
	// leader/follower LSN gap; bytes lag is what the shipper still has
	// on disk (best-effort — a concurrent truncation just skips files).
	var lagRec uint64
	if lsn, applied := store.CurrentLSN(), fol.AppliedLSN(); lsn > applied {
		lagRec = lsn - applied
	}
	lagBytes, err := shp.LagBytes()
	if err != nil {
		lagBytes = 0
	}
	rep.coord.ObserveReplication(lagRec, lagBytes)
}

// silenced reports whether the node's control-plane path is cut. A
// data-plane partition implies the control cut too: it models the whole
// link going dark, not just the heartbeat port.
func (h *chaosHarness) silenced(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashed[id] || h.partitioned[id] || h.dataPartitioned[id]
}

// dataCut reports whether the node's checkpoint data plane is severed.
func (h *chaosHarness) dataCut(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dataPartitioned[id]
}

// agentCkptWriter is one node's path to the platform checkpoint store,
// with the data-plane fault model applied: a data-partitioned node
// cannot push checkpoints (or prune remotely), exactly as its transfer
// connections would fail. The agent must absorb the error — the
// workload keeps running on its last durable generation.
type agentCkptWriter struct {
	h  *chaosHarness
	id string
}

var errDataPlaneSevered = fmt.Errorf("chaos: checkpoint data plane severed")

func (w agentCkptWriter) Save(ck checkpoint.Checkpoint) error {
	if w.h.dataCut(w.id) {
		return errDataPlaneSevered
	}
	return w.h.ckpts.Save(ck)
}

func (w agentCkptWriter) Prune(jobID string) (int64, error) {
	if w.h.dataCut(w.id) {
		return 0, errDataPlaneSevered
	}
	return w.h.ckpts.Prune(jobID)
}

// maybeReplay delivers 1–3 extra copies of an already-processed control
// message while a duplicate-delivery window is open, verifying every
// replay leaves the store untouched. Runs on the driver goroutine, at a
// quiescent point by construction.
func (h *chaosHarness) maybeReplay(kind, label string, deliver func()) {
	h.mu.Lock()
	if !h.dupOn {
		h.mu.Unlock()
		return
	}
	h.dupCounter++
	replays := 1 + h.dupCounter%3
	if h.dupReplays == nil {
		h.dupReplays = make(map[string]int)
	}
	h.dupReplays[kind]++
	h.mu.Unlock()
	store := h.currentStore()
	for i := 0; i < replays; i++ {
		if vs := chaos.VerifyIdempotent(store, label, deliver); len(vs) > 0 {
			h.mu.Lock()
			h.dupViolations = append(h.dupViolations, vs...)
			h.mu.Unlock()
		}
	}
}

// register (re-)registers an agent with the current coordinator.
func (h *chaosHarness) register(ag *agent.Agent) error {
	resp, err := h.currentCoord().Register(
		ag.RegisterRequest("inproc://"+ag.MachineID(), 1<<40),
		chaosHandle{h: h, id: ag.MachineID(), inner: core.LocalAgent{A: ag}})
	if err != nil {
		return err
	}
	ag.SetToken(resp.Token)
	ag.ObserveEpoch(resp.LeaderEpoch)
	if a := h.currentAggAudit(); a != nil {
		// Register installs the node with LastHeartbeat = the
		// coordinator's now, which is the shared simulated clock's now.
		a.ObserveRegister(ag.MachineID(), h.clock.Now())
	}
	if h.cfg.Replicated {
		// The agent learns the endpoint set: the leader it just joined
		// plus the standby it can fail over to on a leader change. Both
		// routes land on the harness, which forwards to whoever leads.
		h.mu.Lock()
		leaderID := ""
		if h.repl != nil {
			leaderID = h.repl.id
		}
		h.mu.Unlock()
		ag.SetEndpoints([]agent.Endpoint{
			{ID: leaderID, Notifier: h},
			{ID: "standby", Notifier: h},
		})
	}
	return nil
}

// directSender routes one agent's direct-path beats to whichever
// coordinator currently serves, reporting acknowledged beats to the
// aggregation audit (the direct path is the fallback tier, and the
// audit must see every ack or honest fallback traffic would read as
// fabrication).
type directSender struct{ h *chaosHarness }

func (s directSender) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	resp, err := s.h.currentCoord().Heartbeat(req)
	s.h.observeBeatAck(req, resp, err)
	return resp, err
}

// aggSender routes one agent's beats to its rack aggregator. Crash
// state lives in the aggregator itself (Stop makes Ingest refuse), so
// the shim only adds the audit tap.
type aggSender struct {
	h  *chaosHarness
	id string
}

func (s aggSender) Heartbeat(req api.HeartbeatRequest) (api.HeartbeatResponse, error) {
	g := s.h.aggs[s.id]
	if g == nil {
		return api.HeartbeatResponse{}, aggregator.ErrUnavailable
	}
	resp, err := g.Heartbeat(req)
	s.h.observeBeatAck(req, resp, err)
	return resp, err
}

// aggUpstream is one aggregator's coordinator link with the
// upstream-partition seam applied. Every forward is reported to the
// audit before the cut check — a batch the partition swallows was
// still sent — and learned epochs are reported on success.
type aggUpstream struct {
	h  *chaosHarness
	id string
}

var errAggUpstreamSevered = fmt.Errorf("chaos: aggregator upstream link severed")

func (u aggUpstream) IngestAggregated(b api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	a := u.h.currentAggAudit()
	if a != nil {
		a.ObserveForward(u.id, b.LeaderEpoch, b.WindowSeq)
	}
	u.h.mu.Lock()
	cut := u.h.aggCut[u.id]
	u.h.mu.Unlock()
	if cut {
		return api.AggregatedBeatResponse{}, errAggUpstreamSevered
	}
	resp, err := u.h.currentCoord().IngestAggregated(b)
	if err == nil && a != nil {
		a.ObserveAggEpoch(u.id, resp.LeaderEpoch)
	}
	return resp, err
}

// chaosHandle is the coordinator's transport to one agent, with the
// fault model applied: a crashed or partitioned node is unreachable
// for launches, kills and checkpoints, exactly as its HTTP endpoint
// would be.
type chaosHandle struct {
	h     *chaosHarness
	id    string
	inner core.AgentHandle
}

var errUnreachable = fmt.Errorf("chaos: node unreachable")

func (c chaosHandle) Launch(req api.LaunchRequest) (api.LaunchResponse, error) {
	if c.h.silenced(c.id) {
		return api.LaunchResponse{}, errUnreachable
	}
	resp, err := c.inner.Launch(req)
	if err == nil {
		// Duplicate delivery of the launch request: the agent's ingress
		// must re-acknowledge the existing placement, not fail it or
		// start a second copy.
		c.h.maybeReplay("launch", "launch "+req.JobID+" on "+c.id, func() {
			resp2, err2 := c.inner.Launch(req)
			if err2 != nil || resp2 != resp {
				c.h.mu.Lock()
				c.h.dupViolations = append(c.h.dupViolations, invariant.Violation{
					Rule: "no-duplicate-side-effects",
					Detail: fmt.Sprintf("launch %s on %s not idempotent: err=%v resp=%+v first=%+v",
						req.JobID, c.id, err2, resp2, resp),
				})
				c.h.mu.Unlock()
			}
		})
	}
	return resp, err
}

func (c chaosHandle) Kill(req api.KillRequest) error {
	if c.h.silenced(c.id) {
		return errUnreachable
	}
	return c.inner.Kill(req)
}

func (c chaosHandle) Checkpoint(jobID string, incremental bool) (api.CheckpointResponse, error) {
	if c.h.silenced(c.id) {
		return api.CheckpointResponse{}, errUnreachable
	}
	return c.inner.Checkpoint(jobID, incremental)
}

// dropBeat reports whether this beat falls inside an open partial-loss
// window and loses the coin toss. The decision runs before the agent
// builds the request, so its health buffer and beat sequence stay
// untouched — the dropped beat simply never happened, and the next one
// carries the accumulated events.
func (h *chaosHarness) dropBeat(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.lossOn[id] {
		return false
	}
	return h.lossRng.Intn(2) == 0
}

// heartbeatLoop reports on the configured cadence; beats from silenced
// (crashed or partitioned) and departed nodes are dropped — silence is
// the platform's failure signal — and partial-loss windows drop
// individual beats probabilistically. Agents with a rack aggregator
// assigned use the tiered loop instead; the classic direct loop below
// is byte-for-byte what the pre-aggregation schedules ran.
func (h *chaosHarness) heartbeatLoop(ag *agent.Agent) {
	if ag.AggregatorID() != "" {
		h.aggregatedHeartbeatLoop(ag)
		return
	}
	var loop func()
	loop = func() {
		if !ag.Departed() && !h.silenced(ag.MachineID()) && !h.dropBeat(ag.MachineID()) {
			req := ag.HeartbeatRequest()
			resp, err := h.currentCoord().Heartbeat(req)
			var nl api.ErrNotLeader
			switch {
			case err == nil && resp.Reregister:
				_ = h.register(ag)
			case err == nil && resp.Acknowledged:
				ag.ObserveEpoch(resp.LeaderEpoch)
				// Replay the very same request (same beat sequence):
				// the coordinator's ingress guard must make it a no-op.
				h.maybeReplay("heartbeat", "heartbeat "+ag.MachineID(), func() {
					if c := h.currentCoord(); c != nil {
						_, _ = c.Heartbeat(req)
					}
				})
			case errors.As(err, &nl):
				// The replica we addressed is fenced: follow the hint
				// (or try the other endpoint) and re-register. During
				// the no-leader gap the register fails too; the next
				// beat retries.
				ag.Redirect(nl.LeaderHint)
				_ = h.register(ag)
			}
		}
		h.clock.AfterFunc(h.cfg.HeartbeatInterval, loop)
	}
	h.clock.AfterFunc(h.cfg.HeartbeatInterval, loop)
}

// aggregatedHeartbeatLoop reports through the agent's endpoint tiers:
// the rack aggregator first, the coordinator direct when the relay is
// down, degraded or stale. SendBeat builds the request once and
// re-delivers the very same beat on fallback, so the coordinator's
// sequence guard sees at most one effective copy. Epoch observation
// happens inside SendBeat; the loop only handles re-registration
// demands and leadership redirects, mirroring the direct loop.
func (h *chaosHarness) aggregatedHeartbeatLoop(ag *agent.Agent) {
	direct := directSender{h: h}
	var loop func()
	loop = func() {
		if !ag.Departed() && !h.silenced(ag.MachineID()) && !h.dropBeat(ag.MachineID()) {
			resp, _, err := ag.SendBeat(direct)
			var nl api.ErrNotLeader
			switch {
			case err == nil && resp.Reregister:
				_ = h.register(ag)
			case errors.As(err, &nl):
				ag.Redirect(nl.LeaderHint)
				_ = h.register(ag)
			}
		}
		h.clock.AfterFunc(h.cfg.HeartbeatInterval, loop)
	}
	h.clock.AfterFunc(h.cfg.HeartbeatInterval, loop)
}

// startTraffic maintains a population of cfg.Jobs concurrent training
// jobs: an initial burst, then periodic top-ups until the fault horizon.
func (h *chaosHarness) startTraffic(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	specs := []workload.TrainingSpec{workload.SmallCNN, workload.SmallCNN, workload.SmallTransformer}
	submit := func() {
		spec := specs[rng.Intn(len(specs))]
		req := TrainingJobSubmission(fmt.Sprintf("user-%d", rng.Intn(5)), spec, 10*time.Minute)
		if _, err := h.currentCoord().SubmitJob(req); err == nil {
			h.mu.Lock()
			h.submitted++
			h.mu.Unlock()
		}
	}
	for i := 0; i < h.cfg.Jobs; i++ {
		submit()
	}
	end := Epoch.Add(h.cfg.Spec.Duration)
	var topUp func()
	topUp = func() {
		if !h.clock.Now().Before(end) {
			return
		}
		store := h.currentStore()
		active := store.CountJobsInState(db.JobPending) +
			store.CountJobsInState(db.JobRunning) +
			store.CountJobsInState(db.JobMigrating)
		for ; active < h.cfg.Jobs; active++ {
			submit()
		}
		h.clock.AfterFunc(15*time.Minute, topUp)
	}
	h.clock.AfterFunc(15*time.Minute, topUp)
}

// --- agent.Notifier (routed to the current coordinator) ---

// JobUpdate forwards job state changes. Terminal reports are modelled
// as retried-until-delivered, so they pass through partitions; the
// coordinator's stale-node guard decides their fate.
func (h *chaosHarness) JobUpdate(machineID, jobID string, state db.JobState, step int64) {
	if c := h.currentCoord(); c != nil {
		if h.cfg.Replicated && !c.Leading() {
			// Leadership gap: the installed replica is fenced and would
			// drop the report. Retry until a leader is serving — the
			// real agent's until-delivered retry loop.
			h.clock.AfterFunc(30*time.Second, func() {
				h.JobUpdate(machineID, jobID, state, step)
			})
			return
		}
		c.JobUpdate(machineID, jobID, state, step)
		// Terminal reports are retried until delivered, so they are also
		// the reports most likely to arrive twice; the coordinator's
		// terminal-state pre-check must make replays true no-ops.
		h.maybeReplay("job-update", fmt.Sprintf("job-update %s on %s", jobID, machineID), func() {
			if c2 := h.currentCoord(); c2 != nil {
				c2.JobUpdate(machineID, jobID, state, step)
			}
		})
	}
}

// Departing forwards announced departures — unless the node is
// partitioned, in which case the announcement cannot reach the
// coordinator and heartbeat loss must do the work.
func (h *chaosHarness) Departing(machineID string, reason api.DepartReason) {
	if h.silenced(machineID) {
		return
	}
	if c := h.currentCoord(); c != nil {
		c.Departing(machineID, reason)
	}
}

// --- chaos.Platform ---

// Store implements chaos.Platform.
func (h *chaosHarness) Store() db.Store { return h.currentStore() }

// CrashNode implements a power loss: workloads die instantly (no
// checkpoints), heartbeats stop, nobody tells the coordinator.
func (h *chaosHarness) CrashNode(id string) {
	ag := h.agents[id]
	if ag == nil || ag.Departed() {
		return
	}
	h.mu.Lock()
	if h.crashed[id] {
		h.mu.Unlock()
		return
	}
	h.crashed[id] = true
	h.mu.Unlock()
	ag.KillSwitch()
}

// DepartNode announces a departure with a 5-minute checkpoint grace.
func (h *chaosHarness) DepartNode(id string, temporary bool) {
	ag := h.agents[id]
	if ag == nil || ag.Departed() || h.silenced(id) {
		return
	}
	reason := api.DepartScheduled
	if temporary {
		reason = api.DepartTemporary
	}
	ag.Depart(reason, 5*time.Minute)
}

// ReturnNode brings a crashed or departed node back online.
func (h *chaosHarness) ReturnNode(id string) {
	ag := h.agents[id]
	if ag == nil {
		return
	}
	h.mu.Lock()
	wasCrashed := h.crashed[id]
	delete(h.crashed, id)
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
	if ag.Departed() {
		ag.Return()
		_ = h.register(ag)
		return
	}
	_ = wasCrashed // a crashed node resumes via its next heartbeat
}

// PartitionStart cuts the control plane to the nodes.
func (h *chaosHarness) PartitionStart(ids []string) {
	h.mu.Lock()
	for _, id := range ids {
		h.partitioned[id] = true
	}
	h.mu.Unlock()
}

// PartitionHeal restores the control plane; reconciliation runs on the
// next heartbeats.
func (h *chaosHarness) PartitionHeal(ids []string) {
	h.mu.Lock()
	for _, id := range ids {
		delete(h.partitioned, id)
	}
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
}

// LatencySpikeStart degrades the node's access link 20× with +5 ms
// latency; new transfers see the degraded rate.
func (h *chaosHarness) LatencySpikeStart(id string) {
	if h.net == nil {
		return
	}
	orig, ok := h.origLinks[id]
	if !ok {
		return
	}
	h.net.AddNode(netsim.NodeLink{
		Name:    id,
		Access:  orig.Access / 20,
		Latency: orig.Latency + 5*time.Millisecond,
	})
}

// LatencySpikeHeal restores the original link.
func (h *chaosHarness) LatencySpikeHeal(id string) {
	if h.net == nil {
		return
	}
	if orig, ok := h.origLinks[id]; ok {
		h.net.AddNode(orig)
	}
}

// SetWALFault switches the injected disk behaviour under the log.
func (h *chaosHarness) SetWALFault(mode chaos.WALFaultMode) {
	if h.fs == nil {
		return
	}
	h.fs.SetMode(mode)
}

// SetClockSkew steps one node's wall clock to the given offset from
// true time (zero steps it back). Only the node's own components see
// the skewed time; the coordinator keeps its own clock.
func (h *chaosHarness) SetClockSkew(id string, offset time.Duration) {
	sk, ok := h.skewed[id]
	if !ok {
		return
	}
	h.mu.Lock()
	if offset == 0 {
		delete(h.skews, id)
	} else {
		h.skews[id] = offset
	}
	h.mu.Unlock()
	sk.SetOffset(offset)
}

// SetDupDelivery toggles the duplicate-delivery window.
func (h *chaosHarness) SetDupDelivery(enabled bool) {
	h.mu.Lock()
	h.dupOn = enabled
	h.mu.Unlock()
}

// DataPartitionStart cuts both planes to the nodes: heartbeats and
// launches (control) and checkpoint transfers (data).
func (h *chaosHarness) DataPartitionStart(ids []string) {
	h.mu.Lock()
	for _, id := range ids {
		h.dataPartitioned[id] = true
	}
	h.mu.Unlock()
}

// DataPartitionHeal restores both planes; reconciliation and checkpoint
// pushes resume on the next heartbeat/tick.
func (h *chaosHarness) DataPartitionHeal(ids []string) {
	h.mu.Lock()
	for _, id := range ids {
		delete(h.dataPartitioned, id)
	}
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
}

// SetCheckpointFault switches the injected damage under the checkpoint
// store's backing blobs.
func (h *chaosHarness) SetCheckpointFault(mode chaos.CkptFaultMode) {
	h.blob.SetMode(mode)
}

// --- chaos.GrayPlatform ---

// GrayDegradeStart opens a gray-degradation window: the node's health
// source starts emitting recoverable-XID and thermal events, which
// ride its next heartbeats to the coordinator. Nothing fails outright
// — the node keeps beating and its jobs keep running; only the health
// fold should push it out of service.
func (h *chaosHarness) GrayDegradeStart(id string) {
	if h.healthSrcs[id] == nil {
		return
	}
	h.mu.Lock()
	open := h.grayOn[id]
	h.grayOn[id] = true
	h.mu.Unlock()
	if !open {
		h.pumpGray(id, 0)
	}
}

// pumpGray injects one event batch and re-arms itself every heartbeat
// interval while the window stays open. The mix is deterministic in
// the tick counter: a critical thermal event each beat, plus a
// recoverable XID every third — enough to fold a node below the
// unhealthy threshold within a few beats.
func (h *chaosHarness) pumpGray(id string, tick int) {
	h.mu.Lock()
	open := h.grayOn[id]
	h.mu.Unlock()
	if !open {
		return
	}
	now := h.clock.Now()
	events := []gpu.HealthEvent{{
		Kind: gpu.HealthThermal, Severity: gpu.SeverityCritical,
		DeviceID: "GPU-0", Value: 96, At: now,
		Message: "chaos: injected thermal throttle",
	}}
	if tick%3 == 0 {
		events = append(events, gpu.HealthEvent{
			Kind: gpu.HealthXIDRecoverable, Severity: gpu.SeverityWarn,
			DeviceID: "GPU-0", XID: 31, At: now,
			Message: "chaos: injected recoverable xid",
		})
	}
	h.healthSrcs[id].Inject(events...)
	h.clock.AfterFunc(h.cfg.HeartbeatInterval, func() { h.pumpGray(id, tick+1) })
}

// GrayDegradeHeal closes the window; the pump stops re-arming and the
// coordinator's decay sweep folds the node back toward healthy.
func (h *chaosHarness) GrayDegradeHeal(id string) {
	h.mu.Lock()
	delete(h.grayOn, id)
	h.mu.Unlock()
}

// PartialLossStart opens a partial heartbeat-loss window: roughly
// every second beat from the node is dropped in flight. The path is
// degraded, not dead — the node must neither be declared lost nor
// double-ingest the health events its surviving beats carry.
func (h *chaosHarness) PartialLossStart(id string) {
	h.mu.Lock()
	h.lossOn[id] = true
	h.mu.Unlock()
}

// PartialLossHeal restores reliable delivery. The heal grants the same
// reconciliation grace a partition heal does: inside the window the
// coordinator may have declared the node lost and re-placed its jobs,
// and the orphan-killing beat exchange needs reliable delivery to land.
func (h *chaosHarness) PartialLossHeal(id string) {
	h.mu.Lock()
	delete(h.lossOn, id)
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
}

// lossy reports whether the node sits inside an open partial-loss
// window.
func (h *chaosHarness) lossy(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lossOn[id]
}

// SetCheckpointReadRot toggles silent damage on the checkpoint store's
// read path; stored bytes stay intact.
func (h *chaosHarness) SetCheckpointReadRot(enabled bool) {
	h.blob.SetReadRot(enabled)
}

// --- chaos.AggPlatform ---

// CrashAggregator kills a rack relay: its open flush window's deltas
// die with it (the tier's bounded-lag allowance) and its agents' next
// beats fail over to the direct path.
func (h *chaosHarness) CrashAggregator(id string) {
	if g := h.aggs[id]; g != nil {
		g.Stop()
	}
}

// RestartAggregator brings the relay back empty; its agents promote it
// again on their next beat.
func (h *chaosHarness) RestartAggregator(id string) {
	if g := h.aggs[id]; g != nil {
		g.Restart()
	}
}

// AggPartitionStart severs the relay's upstream link: the next forward
// fails, the aggregator degrades (refusing its agents' beats, which
// fall back direct) and probes until the heal.
func (h *chaosHarness) AggPartitionStart(id string) {
	h.mu.Lock()
	h.aggCut[id] = true
	h.mu.Unlock()
}

// AggPartitionHeal restores the upstream link and heals the relay's
// degraded state, as its next successful probe would.
func (h *chaosHarness) AggPartitionHeal(id string) {
	h.mu.Lock()
	delete(h.aggCut, id)
	h.mu.Unlock()
	if g := h.aggs[id]; g != nil {
		g.Heal()
	}
}

// CrashCoordinator kills the coordinator process — in-memory state,
// agent handles and pending timers die — and boots a successor from
// snapshot + WAL, checking that the recovered image matches the
// pre-crash store. If a disk-fault window left unlogged mutations, the
// disk is considered healed by the reboot and a checkpoint captures
// the in-memory truth first (the contract: fsync-error windows lose
// nothing once a snapshot succeeds).
func (h *chaosHarness) CrashCoordinator() []invariant.Violation {
	if h.cfg.Replicated {
		// In replicated mode a coordinator crash IS a leader kill: the
		// standby takes over instead of the same instance rebooting.
		return h.KillLeader()
	}
	mgr := h.currentMgr()
	if mgr == nil {
		return nil // no WAL: a restart would legitimately lose everything
	}
	old := h.currentCoord()
	store := h.currentStore()

	weakEquivalence := false
	if mgr.Err() != nil {
		h.fs.SetMode(chaos.WALHealthy)
		if err := mgr.Checkpoint(); err != nil {
			weakEquivalence = true
		}
	}
	before := store.ExportState()

	old.Stop()
	_ = mgr.Close()

	store2 := h.cfg.NewStore()
	mgr2, err := wal.Open(h.dir, store2, wal.Config{
		FS:            h.fs,
		OnAppendError: func(error) { h.noteDurabilityLoss() },
	})
	if err != nil {
		// The run is failing (the violation below ends the scenario in
		// red); drop the closed manager so later sim-clock checkpoints
		// stop touching it.
		h.mu.Lock()
		h.mgr = nil
		h.mu.Unlock()
		return []invariant.Violation{{Rule: "recovery-failed", Detail: err.Error()}}
	}
	var vs []invariant.Violation
	if !weakEquivalence {
		vs = invariant.CheckEquivalence(before, store2.ExportState())
	}

	coord2, err := core.New(h.coordCfg, h.clock, store2, h.ckpts, h.bus)
	if err != nil {
		_ = mgr2.Close()
		h.mu.Lock()
		h.mgr = nil
		h.mu.Unlock()
		return append(vs, invariant.Violation{Rule: "recovery-failed", Detail: err.Error()})
	}
	_ = mgr2.Writer().Instrument(coord2.Metrics())
	h.mu.Lock()
	h.store, h.coord, h.mgr = store2, coord2, mgr2
	h.recoveries++
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
	h.attachStreamAudits(store2)

	coord2.RecoverState()
	// Reachable agents re-attach immediately; silenced ones re-register
	// through the heartbeat Reregister path when they come back.
	for _, id := range h.nodeIDs {
		ag := h.agents[id]
		if !ag.Departed() && !h.silenced(id) {
			_ = h.register(ag)
		}
	}
	return vs
}

// --- chaos.ReplicatedPlatform ---

// KillLeader kills the serving leader outright — process gone, log
// closed, lease left to expire — and starts the standby's promotion.
// The promotion completes only once the dead leader's grant plus the
// arbiter's skew-tolerance grace has passed (TryLead retries until
// then), at which point finishTakeover audits zero lost acked mutations
// and installs the successor.
func (h *chaosHarness) KillLeader() []invariant.Violation {
	if !h.cfg.Replicated {
		return nil
	}
	h.mu.Lock()
	busy := h.splitOpen || h.pendingTakeover != nil
	rep := h.repl
	h.mu.Unlock()
	if busy || rep == nil || !rep.coord.Leading() {
		return nil // no settled leader to kill; the schedule moves on
	}
	oldMgr := h.currentMgr()
	oldStore := h.currentStore()
	rep.coord.Stop()
	if oldMgr != nil {
		_ = oldMgr.Close()
	}
	h.mu.Lock()
	h.mgr = nil
	h.mu.Unlock()
	return h.beginTakeover(oldStore)
}

// beginTakeover creates the successor replica over the warm standby's
// store and starts its lease-acquisition loop. deadStore is the fenced
// ex-leader's final state — the acked baseline finishTakeover audits
// against.
func (h *chaosHarness) beginTakeover(deadStore db.Store) []invariant.Violation {
	h.mu.Lock()
	sst := h.standbyStore
	h.mu.Unlock()
	succ, err := h.newReplica(sst)
	if err != nil {
		return []invariant.Violation{{Rule: "failover-failed", Detail: err.Error()}}
	}
	t := &takeover{rep: succ, deadStore: deadStore}
	h.mu.Lock()
	h.pendingTakeover = t
	h.mu.Unlock()
	h.awaitTakeover(t)
	return nil
}

// awaitTakeover retries the successor's lease acquisition every two
// seconds. The retries fail exactly as long as the protocol demands:
// until the previous grant plus the skew-tolerance grace has run out —
// the window in which a zombie predecessor might still believe it
// leads.
func (h *chaosHarness) awaitTakeover(t *takeover) {
	h.mu.Lock()
	aborted := t.aborted
	h.mu.Unlock()
	if aborted {
		return
	}
	if t.rep.coord.TryLead() {
		h.finishTakeover(t)
		return
	}
	h.clock.AfterFunc(2*time.Second, func() { h.awaitTakeover(t) })
}

// finishTakeover completes a promotion whose successor now holds the
// lease. The grant is the linearization point: the arbiter's grace
// guarantees the predecessor self-fenced before it, so deadStore is
// final and every mutation it ever acked must already be on the standby
// — the zero-lost-acked audit checks exactly that. The successor then
// gets its own log (seeded with a snapshot of the inherited state), a
// fresh standby is bootstrapped from that log, and the fleet
// re-attaches under the new epoch.
func (h *chaosHarness) finishTakeover(t *takeover) {
	fail := func(stage string, err error) {
		h.mu.Lock()
		h.pendingTakeover = nil
		h.replViolations = append(h.replViolations, invariant.Violation{
			Rule:   "failover-failed",
			Detail: fmt.Sprintf("%s: %v", stage, err),
		})
		h.mu.Unlock()
	}
	h.leaderLog.RecordTerm(t.rep.coord.Epoch(), t.rep.id)
	h.mu.Lock()
	sst, fol, shp := h.standbyStore, h.follower, h.shipper
	h.mu.Unlock()

	// Final catch-up from the dead leader's log, then force-apply any
	// buffered out-of-order tail (holes are never-durable records).
	before := t.deadStore.ExportState()
	if err := fol.Pump(shp); err != nil {
		fail("final catch-up", err)
		return
	}
	if _, err := fol.Drain(); err != nil {
		fail("promotion drain", err)
		return
	}
	vs := invariant.CheckNoLostAcked(before, sst.ExportState())

	// The successor writes its own log from here on.
	dir, err := os.MkdirTemp("", "gpunion-chaos-wal-*")
	if err != nil {
		fail("successor wal dir", err)
		return
	}
	mgr, err := wal.Open(dir, sst, wal.Config{
		FS:            h.fs,
		OnAppendError: func(error) { h.noteDurabilityLoss() },
		OnDurable:     h.onLeaderDurable,
	})
	if err != nil {
		fail("successor wal", err)
		return
	}
	if err := mgr.Checkpoint(); err != nil {
		fail("successor snapshot", err)
		return
	}
	nextStandby := h.cfg.NewStore()
	if _, err := wal.Recover(dir, nextStandby); err != nil {
		fail("next standby bootstrap", err)
		return
	}

	_ = mgr.Writer().Instrument(t.rep.coord.Metrics())
	h.mu.Lock()
	h.store, h.coord, h.mgr, h.repl = sst, t.rep.coord, mgr, t.rep
	h.standbyStore = nextStandby
	h.follower = wal.NewFollower(nextStandby)
	h.shipper = wal.NewShipper(dir)
	h.extraDirs = append(h.extraDirs, dir)
	h.failovers++
	h.pendingTakeover = nil
	h.replViolations = append(h.replViolations, vs...)
	h.graceUntil = h.clock.Now().Add(3 * h.cfg.HeartbeatInterval)
	h.mu.Unlock()
	h.attachStreamAudits(sst)

	t.rep.coord.RecoverState()
	// Reachable agents re-attach under the new epoch; silenced ones
	// redirect via the heartbeat ErrNotLeader path when they come back.
	for _, id := range h.nodeIDs {
		ag := h.agents[id]
		if !ag.Departed() && !h.silenced(id) {
			_ = h.register(ag)
		}
	}
}

// SplitBrainStart isolates the serving leader from the lease arbiter
// and steps its local clock 90 s behind true time — within the
// arbiter's 2 min skew tolerance — then starts a rival promotion. The
// zombie keeps serving whatever traffic reaches it; the protocol must
// guarantee it observes its own expiry (and self-fences) before the
// rival can win the lease.
func (h *chaosHarness) SplitBrainStart() {
	if !h.cfg.Replicated {
		return
	}
	h.mu.Lock()
	busy := h.splitOpen || h.pendingTakeover != nil
	rep := h.repl
	h.mu.Unlock()
	if busy || rep == nil || !rep.coord.Leading() {
		return
	}
	h.mu.Lock()
	h.splitOpen = true
	h.zombie = rep
	h.zombieMgr = h.mgr
	h.zombieEpoch = rep.coord.Epoch()
	h.zombieStore = h.store
	zStore := h.store
	h.mu.Unlock()
	rep.cut.Cut(true)
	rep.skew.SetOffset(-90 * time.Second)
	if vs := h.beginTakeover(zStore); len(vs) > 0 {
		h.mu.Lock()
		h.replViolations = append(h.replViolations, vs...)
		h.mu.Unlock()
	}
}

// SplitBrainHeal reconnects the zombie's arbiter link and clock. If the
// zombie never lapsed (a short window: its cached grant stayed live and
// the next renewal extends it), the rival promotion is aborted and the
// epoch never changed — the protocol holding, not a violation. If it
// lapsed, the heal probes the fence from both sides before disposing of
// the zombie: the deposed leader must reject new work, and an agent
// that has observed the successor's epoch must reject commands stamped
// with the zombie's.
func (h *chaosHarness) SplitBrainHeal() []invariant.Violation {
	if !h.cfg.Replicated {
		return nil
	}
	h.mu.Lock()
	if !h.splitOpen {
		h.mu.Unlock()
		return nil
	}
	z := h.zombie
	zMgr := h.zombieMgr
	zEpoch := h.zombieEpoch
	t := h.pendingTakeover
	h.mu.Unlock()

	z.skew.SetOffset(0)
	z.cut.Cut(false)
	_, cur := h.lease.Leader()

	if z.coord.Leading() && cur == zEpoch {
		// Survived: no successor exists and the grant is still live, so
		// the zombie resumes as the rightful leader.
		if t != nil {
			h.mu.Lock()
			t.aborted = true
			h.mu.Unlock()
			t.rep.coord.Stop()
		}
		h.mu.Lock()
		h.splitOpen = false
		h.zombie, h.zombieMgr, h.zombieStore, h.zombieEpoch = nil, nil, nil, 0
		h.pendingTakeover = nil
		h.mu.Unlock()
		return nil
	}

	// The zombie lapsed and must have self-fenced. Probe the fence.
	var vs []invariant.Violation
	probe := TrainingJobSubmission("split-brain-probe", workload.SmallCNN, 10*time.Minute)
	if _, err := z.coord.SubmitJob(probe); err == nil {
		vs = append(vs, invariant.Violation{
			Rule: "no-stale-write-accepted",
			Detail: fmt.Sprintf("deposed leader %s (epoch %d) accepted a job submission after isolation",
				z.id, zEpoch),
		})
	}
	if cur > zEpoch {
		// A successor was elected; agents that have observed its epoch
		// must fence the zombie's commands.
		for _, id := range h.nodeIDs {
			ag := h.agents[id]
			if ag.Departed() || h.silenced(id) || ag.CoordEpoch() <= zEpoch {
				continue
			}
			spec := workload.SmallCNN
			_, err := ag.Launch(api.LaunchRequest{
				Envelope: api.Envelope{ProtocolVersion: api.ProtocolVersion, LeaderEpoch: zEpoch},
				JobID:    "split-brain-probe", ImageName: "pytorch/pytorch:2.3-cuda12", Kind: "batch",
				GPUMemMiB: spec.GPUMemMiB, Training: &spec,
			})
			if !errors.Is(err, agent.ErrStaleLeader) {
				vs = append(vs, invariant.Violation{
					Rule: "no-stale-write-accepted",
					Detail: fmt.Sprintf("agent %s (epoch %d) admitted a launch from deposed epoch %d: %v",
						id, ag.CoordEpoch(), zEpoch, err),
				})
			}
			break
		}
	}
	z.coord.Stop()
	if zMgr != nil {
		_ = zMgr.Close()
	}
	h.mu.Lock()
	if h.mgr == zMgr {
		// The successor has not installed its own log yet (takeover
		// still waiting out the grace); keep the slot empty until then.
		h.mgr = nil
	}
	h.splitOpen = false
	h.zombie, h.zombieMgr, h.zombieStore, h.zombieEpoch = nil, nil, nil, 0
	h.mu.Unlock()
	return vs
}

// ExtraChecks audits what the database alone cannot show: idempotency
// breaches found by duplicate-delivery replays since the last audit,
// beat-delta equivalence of the coalesced heartbeat stream,
// the coordinator's derived scheduler pool against a fresh store scan,
// checkpoint-integrity over every live job's restore chain, and —
// outside the reconciliation grace window after a heal or restart —
// skew-bounded-liveness for nodes whose only fault is a clock offset
// plus the agent-vs-store phantom checks. The pool and checkpoint
// checks are never suppressed: they are maintained synchronously and
// must hold at every quiescent point.
func (h *chaosHarness) ExtraChecks() []invariant.Violation {
	var vs []invariant.Violation
	h.mu.Lock()
	vs = append(vs, h.dupViolations...)
	h.dupViolations = nil
	vs = append(vs, h.replViolations...)
	h.replViolations = nil
	h.mu.Unlock()
	if h.leaderLog != nil {
		all := h.leaderLog.Violations()
		h.mu.Lock()
		if h.leaderVsSeen < len(all) {
			vs = append(vs, all[h.leaderVsSeen:]...)
			h.leaderVsSeen = len(all)
		}
		h.mu.Unlock()
	}
	// The pool audit only applies to a leading coordinator: during a
	// leadership gap the installed replica is fenced and its derived
	// pool is rebuilt at promotion (standalone mode always leads).
	if c := h.currentCoord(); c.Leading() {
		for _, p := range c.AuditSchedulerPool() {
			vs = append(vs, invariant.Violation{Rule: "scheduler-pool-consistent", Detail: p})
		}
	}
	store := h.currentStore()
	// Beat-delta equivalence holds at every audit point: the recorded
	// mutation stream, folded, must land on the store's heartbeats.
	if a := h.currentBeatAudit(); a != nil {
		vs = append(vs, a.Check(store)...)
	}
	// Health-score consistency is the same property for the health
	// stream, and the unhealthy-placement exclusion is pure store state
	// — neither needs a reconciliation grace.
	if a := h.currentHealthAudit(); a != nil {
		vs = append(vs, a.Check(store)...)
	}
	// Aggregation equivalence: the roll-up tier fabricated no liveness
	// and persistently lost none. The tolerance covers a crashed flush
	// window (half a beat) plus the beats a node needs to re-deliver
	// through the direct path after a relay failure.
	if a := h.currentAggAudit(); a != nil {
		vs = append(vs, a.Check(store, 5*h.cfg.HeartbeatInterval)...)
	}
	vs = append(vs, invariant.CheckNoPlacementOnUnhealthy(store)...)
	live := store.JobsInState(db.JobPending)
	live = append(live, store.JobsInState(db.JobRunning)...)
	live = append(live, store.JobsInState(db.JobMigrating)...)
	vs = append(vs, invariant.CheckCheckpoints(h.ckpts, live)...)
	h.mu.Lock()
	grace := h.graceUntil
	h.mu.Unlock()
	if h.clock.Now().Before(grace) {
		return vs
	}
	vs = append(vs, invariant.CheckSkewLiveness(store, h.skewedHealthyNodes())...)
	vs = append(vs, h.checkDegradedDrained(store)...)
	for _, id := range h.nodeIDs {
		ag := h.agents[id]
		// Lossy nodes are skipped like silenced ones: mid-window the
		// coordinator may legitimately have re-placed their jobs while
		// the orphan-killing reconciliation beats are being dropped.
		if ag.Departed() || h.silenced(id) || h.lossy(id) {
			continue
		}
		for _, jobID := range ag.Status().RunningJobs {
			rec, err := store.GetJob(jobID)
			if err != nil {
				vs = append(vs, invariant.Violation{
					Rule:   "agent-runs-unknown-job",
					Detail: fmt.Sprintf("node %s executes %s, unknown to the platform", id, jobID),
				})
				continue
			}
			if rec.NodeID != id || (rec.State != db.JobRunning && rec.State != db.JobMigrating) {
				vs = append(vs, invariant.Violation{
					Rule: "agent-runs-unassigned-job",
					Detail: fmt.Sprintf("node %s executes %s, which the platform has %s on %q",
						id, jobID, rec.State, rec.NodeID),
				})
			}
		}
	}
	return vs
}

// checkDegradedDrained maintains the unhealthy-since ledger and runs
// the degraded-node-drained audit. The ledger stamps a node at the
// first (post-grace-window) audit that saw it below the threshold, so
// the drain grace runs from observed crossing time, not from the last
// health fold — folds keep advancing while a gray window stays open.
func (h *chaosHarness) checkDegradedDrained(store db.Store) []invariant.Violation {
	now := h.clock.Now()
	nodes := store.ListNodes()
	h.mu.Lock()
	for i := range nodes {
		n := &nodes[i]
		if n.HealthScore() < monitor.UnhealthyBelow {
			if _, ok := h.unhealthySince[n.ID]; !ok {
				h.unhealthySince[n.ID] = now
			}
		} else {
			delete(h.unhealthySince, n.ID)
		}
	}
	since := make(map[string]time.Time, len(h.unhealthySince))
	for id, t := range h.unhealthySince {
		since[id] = t
	}
	h.mu.Unlock()
	// Ten beat intervals: detection takes a beat, the checkpoint and
	// plan are immediate, and the transfer plus one sweep-cadence retry
	// fit comfortably inside the rest.
	return invariant.CheckDegradedDrained(store, since, now, 10*h.cfg.HeartbeatInterval)
}

// skewedHealthyNodes lists the nodes whose *only* current fault is an
// injected clock offset: skewed, but reachable and still a member.
// Exactly these must stay in service (skew-bounded-liveness).
func (h *chaosHarness) skewedHealthyNodes() []string {
	h.mu.Lock()
	ids := make([]string, 0, len(h.skews))
	for id := range h.skews {
		if h.crashed[id] || h.partitioned[id] || h.dataPartitioned[id] {
			continue
		}
		ids = append(ids, id)
	}
	h.mu.Unlock()
	out := ids[:0]
	for _, id := range ids {
		if ag := h.agents[id]; ag != nil && !ag.Departed() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// --- Canned scenarios (the CI gate: make verify-chaos) ---

// chaosScaleDefs builds n single-3090 workstations.
func chaosScaleDefs(n int) []NodeDef {
	defs := make([]NodeDef, 0, n)
	for i := 0; i < n; i++ {
		defs = append(defs, NodeDef{
			ID:   fmt.Sprintf("node-%04d", i),
			GPUs: []gpu.Spec{gpu.RTX3090},
			Lab:  fmt.Sprintf("lab-%02d", i%20),
		})
	}
	return defs
}

// RunChaosChurnScale is the 400-node churn schedule: provider crashes
// and announced departures at the paper's interruption rates, at the
// scale the ROADMAP targets. No WAL — the subject is the sharded
// store, scheduler and migration machinery under mass churn.
func RunChaosChurnScale(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Defs: chaosScaleDefs(400),
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           90 * time.Minute,
			ChurnPerNodePerDay: 6,
			MeanOutage:         20 * time.Minute,
		},
		Jobs:       100,
		AuditEvery: 10 * time.Minute,
		Drain:      time.Hour,
	})
}

// RunChaosPartitionCrash is the paper-campus schedule combining
// control-plane partitions (long enough to trigger emergency
// migration and split-brain reconciliation) with coordinator
// kill/restart mid-migration, on a WAL-backed store.
func RunChaosPartitionCrash(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           8 * time.Hour,
			ChurnPerNodePerDay: 3,
			PartitionsPerDay:   9,
			MeanPartition:      12 * time.Minute,
			MaxPartitionNodes:  3,
			CoordCrashes:       2,
		},
		Jobs:        16,
		EnableWAL:   true,
		WithNetwork: true,
	})
}

// RunChaosWALFaults is the disk-fault schedule: fsync-error and
// short-write windows under live traffic, plus coordinator crashes
// that force recovery from the damaged-but-quarantined log.
func RunChaosWALFaults(seed int64) (ChaosResult, error) {
	return RunChaos(walFaultsConfig(seed))
}

// RunChaosWALFaultsSingleMutex runs the identical disk-fault schedule
// against the SingleMutex baseline store — the ROADMAP parity check
// that durability and recovery hold independent of store sharding.
func RunChaosWALFaultsSingleMutex(seed int64) (ChaosResult, error) {
	cfg := walFaultsConfig(seed)
	cfg.NewStore = func() db.Store { return db.NewSingleMutex(0) }
	return RunChaos(cfg)
}

func walFaultsConfig(seed int64) ChaosConfig {
	return ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			WALFaultsPerDay:    16,
			MeanWALFault:       10 * time.Minute,
			CoordCrashes:       2,
		},
		Jobs:        16,
		EnableWAL:   true,
		WithNetwork: true,
	}
}

// RunChaosSkewDup is the clock-skew + duplicate-delivery schedule on
// the paper campus: per-node wall clocks step by minutes in either
// direction while heartbeats, terminal job updates and launch requests
// are replayed — under churn, so the replays race real displacements.
// The subjects are the coordinator's idempotent ingress guards and the
// agent's skew-hardened progress accounting.
func RunChaosSkewDup(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			ClockSkewsPerDay:   16,
			MaxSkew:            3 * time.Minute,
			MeanSkewWindow:     25 * time.Minute,
			DupWindowsPerDay:   18,
			MeanDupWindow:      40 * time.Minute,
		},
		Jobs: 16,
	})
}

// RunChaosGrayDegrade is the gray-failure schedule: nodes degrade
// without dying — recoverable XIDs and thermal throttling stream in on
// heartbeats while the node keeps beating and its jobs keep running —
// under churn and a coordinator crash, on a WAL-backed store. The
// subjects are the health-fold pipeline (health-score-consistent,
// including across crash recovery), the scheduler's unhealthy
// exclusion, and predictive checkpoint-then-migrate actually draining
// degraded nodes (degraded-node-drained).
func RunChaosGrayDegrade(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			GrayDegradesPerDay: 24,
			MeanGrayDegrade:    25 * time.Minute,
			CoordCrashes:       1,
		},
		Jobs:        16,
		EnableWAL:   true,
		WithNetwork: true,
	})
}

// RunChaosPartialLoss is the lossy-path schedule: partial heartbeat
// loss (every other beat dropped) overlapping gray-degradation
// windows, so health events arrive late, batched onto surviving beats.
// The subjects are the bounded health carry (events accumulate and
// ride the next delivered beat, none double-ingested), loss-tolerant
// failure detection — a half-dead path must not get the node declared
// lost — and, via the replicated pair with a leader kill, the health
// score surviving standby promotion intact.
func RunChaosPartialLoss(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			GrayDegradesPerDay: 6,
			MeanGrayDegrade:    20 * time.Minute,
			PartialLossPerDay:  12,
			MeanPartialLoss:    15 * time.Minute,
			LeaderKills:        1,
		},
		Jobs:       16,
		Replicated: true,
	})
}

// RunChaosCkptReadRot is the silent-read-rot schedule: checkpoint
// blobs are stored intact but every other read returns a damaged copy
// during rot windows, while gray degradation forces predictive
// migrations straight through the damage. The subjects are the
// checkpoint store's read-side CRC detection and generation fallback
// under a restore path that cannot trust what it fetches.
func RunChaosCkptReadRot(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			GrayDegradesPerDay: 6,
			MeanGrayDegrade:    20 * time.Minute,
			CkptReadRotPerDay:  10,
			MeanCkptReadRot:    15 * time.Minute,
		},
		Jobs:        16,
		EnableWAL:   true,
		WithNetwork: true,
	})
}

// RunChaosAggCrash is the aggregation-tier crash schedule: the paper
// campus beats through four rack aggregators while relays are killed
// mid-flush-window (their open deltas legitimately die) and restarted
// empty, under churn and a coordinator crash on a WAL-backed store.
// The subjects are the aggregation-equivalence audit — no fabricated
// or persistently lost liveness through relay deaths — the agents'
// direct-path fallback and re-promotion, and the roll-up surviving
// coordinator recovery (the audit's ledger spans the store swap).
func RunChaosAggCrash(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			AggCrashesPerDay:   24,
			MeanAggOutage:      10 * time.Minute,
			CoordCrashes:       1,
		},
		Jobs:        16,
		Aggregators: 4,
		EnableWAL:   true,
	})
}

// RunChaosAggPartition is the aggregation-tier partition schedule:
// upstream links between relays and the coordinator are severed while
// gray-degrading nodes stream health events, so health-carrying
// pass-through beats must fail over to the direct path un-acked and
// re-deliver without loss or double-ingestion. The subjects are
// degradation + direct fallback (a cut relay must refuse beats, not
// black-hole them), the health-completeness half of the equivalence
// audit, and relay re-promotion after the heal.
func RunChaosAggPartition(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:            6 * time.Hour,
			ChurnPerNodePerDay:  2,
			AggPartitionsPerDay: 18,
			MeanAggPartition:    12 * time.Minute,
			GrayDegradesPerDay:  6,
			MeanGrayDegrade:     20 * time.Minute,
		},
		Jobs:        16,
		Aggregators: 4,
	})
}

// RunChaosDataPlane is the data-plane schedule: partitions that sever
// checkpoint transfers along with the control path, checkpoint-store
// corruption windows (silent bit flips and truncation under the CRC
// frames), churn to force migrations through the damage, and a
// coordinator crash on a WAL-backed store. The subjects are checkpoint
// corruption detection with generation fallback and migration retry
// once a severed transfer path heals.
func RunChaosDataPlane(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:             6 * time.Hour,
			ChurnPerNodePerDay:   2,
			DataPartitionsPerDay: 8,
			MeanPartition:        12 * time.Minute,
			MaxPartitionNodes:    3,
			CkptFaultsPerDay:     12,
			MeanCkptFault:        12 * time.Minute,
			CoordCrashes:         1,
		},
		Jobs:        16,
		EnableWAL:   true,
		WithNetwork: true,
	})
}
