package sim

import (
	"fmt"
	"io"
	"strings"
)

// ComparisonRow is one criterion of the paper's Table 1, comparing
// distributed computing platforms for campus GPU sharing.
type ComparisonRow struct {
	Criterion  string
	OpenStack  string
	CloudStack string
	OpenNebula string
	Kubernetes string
	GPUnion    string
}

// Table1 returns the paper's platform-comparison matrix verbatim.
func Table1() []ComparisonRow {
	return []ComparisonRow{
		{"Community Support", "Extensive", "Limited", "Limited", "Extensive", "Academic"},
		{"Deployment Complexity", "Very High", "Medium", "Medium", "High", "Low"},
		{"Resource Footprint", "Very Heavy", "Medium", "Light", "Heavy", "Minimal"},
		{"Learning Curve", "Steep", "Moderate", "Gentle", "Steep", "Gentle"},
		{"Provider Autonomy", "None", "None", "Limited", "None", "Full"},
		{"Workload Focus", "VMs/Mixed", "VMs", "VMs/Mixed", "Containers", "GPU Containers"},
		{"Voluntary Participation", "No", "No", "No", "No", "Yes"},
		{"Dynamic Node Joining", "Limited", "Limited", "Limited", "Limited", "Native"},
		{"GPU Specialization", "Add-on", "Limited", "Add-on", "Plugin", "Core Feature"},
		{"Campus Network Optimization", "No", "No", "No", "No", "Yes"},
		{"Target Environment", "Data Center", "SME Clouds", "Private Clouds", "Large Clusters", "Campus LANs"},
		{"Fault Tolerance Model", "Infrastructure", "Infrastructure", "Infrastructure", "Infrastructure", "Workload"},
	}
}

// GPUnionClaims maps each of Table 1's GPUnion-column claims to the
// code that implements it, so the comparison is checkable rather than
// rhetorical.
func GPUnionClaims() map[string]string {
	return map[string]string{
		"Provider Autonomy":           "agent.KillSwitch / agent.Pause / agent.Depart act locally, never blocking on the coordinator",
		"Voluntary Participation":     "core.Coordinator.Register admits any node at any time; departures are first-class (db.NodeDeparted)",
		"Dynamic Node Joining":        "core tests: a pending job starts the moment a new node registers",
		"GPU Specialization":          "scheduler places by GPU memory + CUDA compute capability; gpu.Inventory models devices natively",
		"Campus Network Optimization": "netsim models the campus LAN; incremental checkpoints keep backup traffic under 2% of the backbone",
		"Fault Tolerance Model":       "checkpoint.ALC + migration.Engine recover workloads, not infrastructure",
		"Workload Focus":              "container.Runtime runs GPU containers exclusively (batch + interactive)",
		"Deployment Complexity":       "two static binaries (cmd/coordinator, cmd/agent) and one JSON config",
		"Resource Footprint":          "coordinator state is one in-process database; agents are a single goroutine loop",
	}
}

// WriteTable1 renders the comparison in the paper's layout.
func WriteTable1(w io.Writer) error {
	rows := Table1()
	platforms := []string{"Criterion", "OpenStack", "CloudStack", "OpenNebula", "Kubernetes", "GPUnion"}
	widths := make([]int, len(platforms))
	for i, p := range platforms {
		widths[i] = len(p)
	}
	for _, r := range rows {
		cells := []string{r.Criterion, r.OpenStack, r.CloudStack, r.OpenNebula, r.Kubernetes, r.GPUnion}
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(platforms)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(platforms)))); err != nil {
		return err
	}
	for _, r := range rows {
		cells := []string{r.Criterion, r.OpenStack, r.CloudStack, r.OpenNebula, r.Kubernetes, r.GPUnion}
		if _, err := fmt.Fprintln(w, line(cells)); err != nil {
			return err
		}
	}
	return nil
}
