package sim

import (
	"errors"
	"fmt"
	"os"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/chaos"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
	"gpunion/internal/workload"
)

// FailoverConfig tunes the scripted leader-handoff scenario.
type FailoverConfig struct {
	// Nodes is how many 2×RTX3090 provider nodes join (default 4).
	Nodes int
	// Jobs is how many training jobs are submitted before the kill
	// (default 12 — more than the fleet holds, so a pending tail rides
	// through the handoff).
	Jobs int
	// PostFailover is how long the simulation runs after the standby
	// takes over (default 4 h — enough for every SmallCNN to finish).
	PostFailover time.Duration
}

// FailoverResult is what the scenario measured.
type FailoverResult struct {
	SubmittedJobs int
	PendingAtKill int
	RunningAtKill int
	LeaderAtKill  string
	EpochAtKill   uint64
	// StandbyRejectedBeforePromotion records that the warm standby
	// fenced a submission while the leader was alive, returning a
	// leader hint.
	StandbyRejectedBeforePromotion bool
	// PromotionDelay is how long the slot stayed vacant: the dead
	// leader's remaining grant plus the arbiter's skew-tolerance grace.
	PromotionDelay time.Duration
	NewLeader      string
	NewEpoch       uint64
	// LostAcked is the zero-lost-acked-mutations audit of the promoted
	// store against the dead leader's final state (empty = pass).
	LostAcked []invariant.Violation
	// Post-handoff liveness: the inherited queue must drain without
	// resubmission.
	CompletedAfterFailover int
	LostJobs               int
}

// RunFailover is the scripted replication demo: two coordinator
// replicas compete for a lease, the leader ships every durable mutation
// to the standby as part of acking it, agents hold both endpoints. The
// leader is killed without warning; the standby's acquisition attempts
// fail until the dead grant plus the skew grace runs out, then it
// promotes — drains the shipped log, verifies nothing acked was lost,
// recovers coordinator state, and the fleet re-registers under the new
// epoch and finishes the inherited work.
func RunFailover(cfg FailoverConfig) (FailoverResult, error) {
	var res FailoverResult
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 12
	}
	if cfg.PostFailover <= 0 {
		cfg.PostFailover = 4 * time.Hour
	}
	dirA, err := os.MkdirTemp("", "gpunion-wal-a-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "gpunion-wal-b-*")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dirB)

	clock := simclock.NewSim(Epoch)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)
	lease := core.NewLease(clock, 30*time.Second, 2*time.Minute)

	// Leader store + log; the standby applies the shipped stream.
	storeA := db.New(0)
	standby := db.New(0)
	follower := wal.NewFollower(standby)
	shipper := wal.NewShipper(dirA)
	mgrA, err := wal.Open(dirA, storeA, wal.Config{
		// Semi-synchronous shipping: runs after the record is durable
		// and before the store acks, so acked implies on-standby.
		OnDurable: func(db.Mutation) { _ = follower.Pump(shipper) },
	})
	if err != nil {
		return res, err
	}
	coordCfg := core.Config{HeartbeatInterval: time.Minute, BatchSize: 8}
	cfgA := coordCfg
	cfgA.Lease, cfgA.ReplicaID = lease, "coord-a"
	coordA, err := core.New(cfgA, clock, storeA, ckpts, bus)
	if err != nil {
		return res, err
	}
	if !coordA.TryLead() {
		return res, fmt.Errorf("coord-a failed to take the free lease")
	}
	cfgB := coordCfg
	cfgB.Lease, cfgB.ReplicaID = lease, "coord-b"
	coordB, err := core.New(cfgB, clock, standby, ckpts, bus)
	if err != nil {
		return res, err
	}

	ref := &coordRef{}
	ref.set(coordA)
	rn := refNotifier{ref: ref}

	agents := make([]*agent.Agent, cfg.Nodes)
	for i := range agents {
		id := fmt.Sprintf("node-%02d", i+1)
		rt := container.NewRuntime(container.DefaultImages(),
			gpu.NewMixedInventory(gpu.RTX3090, gpu.RTX3090), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15", ProgressTick: 30 * time.Second},
			clock, rt, ckpts, bus, rn)
		// The agent learns both replicas up front; a leader change is a
		// redirect, not a reconfiguration.
		ag.SetEndpoints([]agent.Endpoint{
			{ID: "coord-a", Notifier: rn},
			{ID: "coord-b", Notifier: rn},
		})
		if err := registerAgent(ref, ag); err != nil {
			return res, err
		}
		ag.ObserveEpoch(coordA.Epoch())
		agents[i] = ag
		heartbeatVia(clock, ref, ag, time.Minute)
	}

	for i := 0; i < cfg.Jobs; i++ {
		req := TrainingJobSubmission(fmt.Sprintf("user-%d", i%3), workload.SmallCNN, 5*time.Minute)
		if _, err := coordA.SubmitJob(req); err != nil {
			return res, err
		}
	}
	res.SubmittedJobs = cfg.Jobs
	clock.Advance(15 * time.Minute)

	// The standby fences while the leader lives.
	_, err = coordB.SubmitJob(TrainingJobSubmission("user-x", workload.SmallCNN, 5*time.Minute))
	var nl api.ErrNotLeader
	res.StandbyRejectedBeforePromotion = errors.As(err, &nl) && nl.LeaderHint == "coord-a"

	res.PendingAtKill = storeA.CountJobsInState(db.JobPending)
	res.RunningAtKill = storeA.CountJobsInState(db.JobRunning)
	res.LeaderAtKill, res.EpochAtKill = "coord-a", coordA.Epoch()
	before := storeA.ExportState()
	killedAt := clock.Now()

	// --- Kill the leader. No handover, no final flush beyond what
	// every ack already guaranteed.
	ref.set(nil)
	coordA.Stop()
	if err := mgrA.Close(); err != nil {
		return res, err
	}

	// --- The standby hammers the arbiter until the grace passes.
	for !coordB.TryLead() {
		if clock.Now().Sub(killedAt) > time.Hour {
			return res, fmt.Errorf("standby never won the lease")
		}
		clock.Advance(2 * time.Second)
	}
	res.PromotionDelay = clock.Now().Sub(killedAt)
	res.NewLeader, res.NewEpoch = "coord-b", coordB.Epoch()

	// Promotion: final catch-up from the dead leader's log, force-apply
	// any out-of-order tail, and audit against the acked baseline.
	if err := follower.Pump(shipper); err != nil {
		return res, err
	}
	if _, err := follower.Drain(); err != nil {
		return res, err
	}
	res.LostAcked = invariant.CheckNoLostAcked(before, standby.ExportState())

	// The successor writes its own log from here on.
	mgrB, err := wal.Open(dirB, standby, wal.Config{})
	if err != nil {
		return res, err
	}
	defer mgrB.Close()
	coordB.RecoverState()
	defer coordB.Stop()
	ref.set(coordB)

	// Agents redirect to the surviving endpoint and re-register under
	// the new epoch; their running workloads never stopped.
	for _, ag := range agents {
		ag.Redirect("coord-b")
		if err := registerAgent(ref, ag); err != nil {
			return res, err
		}
		ag.ObserveEpoch(coordB.Epoch())
	}

	clock.Advance(cfg.PostFailover)
	res.CompletedAfterFailover = standby.CountJobsInState(db.JobCompleted)
	res.LostJobs = cfg.Jobs - len(standby.ListJobs())
	return res, nil
}

// refNotifier routes agent notifications to whichever coordinator the
// ref currently names, dropping them during a leadership gap (the
// chaos harness models the retry; the scripted run re-registers
// explicitly).
type refNotifier struct{ ref *coordRef }

func (n refNotifier) JobUpdate(machineID, jobID string, state db.JobState, step int64) {
	if c := n.ref.get(); c != nil {
		c.JobUpdate(machineID, jobID, state, step)
	}
}

func (n refNotifier) Departing(machineID string, reason api.DepartReason) {
	if c := n.ref.get(); c != nil {
		c.Departing(machineID, reason)
	}
}

// RunChaosLeaderFailover is the leader-kill schedule on the replicated
// pair: three unannounced leader kills under churn, each forcing a
// lease-grace wait, a standby promotion with the zero-lost-acked audit,
// and a fleet-wide redirect — plus the single-leader-per-epoch and
// stale-write audits running throughout.
func RunChaosLeaderFailover(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			LeaderKills:        3,
		},
		Jobs:        16,
		Replicated:  true,
		WithNetwork: true,
	})
}

// RunChaosSplitBrain is the split-brain schedule: the serving leader is
// isolated from the lease arbiter with its clock stepped behind true
// time while a rival promotion races it. Short windows must end with
// the original leader resuming (no epoch change); long ones must end
// with it self-fenced before the rival's grant, probed at heal time
// from both the coordinator and the agent side.
func RunChaosSplitBrain(seed int64) (ChaosResult, error) {
	return RunChaos(ChaosConfig{
		Seed: seed,
		Spec: chaos.Spec{
			Duration:           6 * time.Hour,
			ChurnPerNodePerDay: 2,
			SplitBrains:        3,
			MeanSplitBrain:     4 * time.Minute,
		},
		Jobs:        16,
		Replicated:  true,
		WithNetwork: true,
	})
}
