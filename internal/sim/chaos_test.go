package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gpunion/internal/chaos"
	"gpunion/internal/checkpoint"
	"gpunion/internal/db"
	"gpunion/internal/invariant"
	"gpunion/internal/workload"
)

// requireClean asserts a chaos run finished with zero invariant
// violations and actually did something.
func requireClean(t *testing.T, res ChaosResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		for i, v := range res.Violations {
			if i >= 10 {
				t.Errorf("… and %d more", len(res.Violations)-10)
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.FailNow()
	}
	if len(res.Schedule) == 0 {
		t.Fatal("schedule injected no faults")
	}
	if res.CompletedJobs == 0 {
		t.Error("no job completed under chaos — the platform did no useful work")
	}
	t.Logf("faults=%d audits=%d submitted=%d completed=%d recoveries=%d walFaults=%d",
		len(res.Schedule), res.Report.Audits, res.SubmittedJobs,
		res.CompletedJobs, res.Recoveries, res.WALFaultsInjected)
}

// TestChaosChurnScale: 400 nodes under paper-rate provider churn. The
// sharded store, batch scheduler and migration machinery must hold
// every invariant while the fleet churns.
func TestChaosChurnScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 400-node fleet for hours of simulated time")
	}
	res, err := RunChaosChurnScale(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindNodeCrash]+res.Report.Executed[chaos.KindNodeDepart] < 20 {
		t.Errorf("churn schedule too thin: %v", res.Report.Executed)
	}
}

// TestChaosPartitionCrash: control-plane partitions past the missed-
// heartbeat threshold (emergency migration + split-brain orphans) plus
// coordinator kill/restart mid-migration on a WAL-backed store.
func TestChaosPartitionCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosPartitionCrash(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindPartition] == 0 {
		t.Errorf("no partitions executed: %v", res.Report.Executed)
	}
	if res.Recoveries == 0 {
		t.Error("no coordinator kill/restart executed")
	}
}

// TestChaosWALFaults: fsync-error and torn-write windows under live
// traffic, then recovery from the damaged log. The poisoned-segment
// rotation must keep every acknowledged record durable.
func TestChaosWALFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosWALFaults(42)
	requireClean(t, res, err)
	if res.WALFaultsInjected == 0 {
		t.Error("no disk faults were actually delivered")
	}
	if res.Recoveries == 0 {
		t.Error("no recovery exercised the damaged log")
	}
}

// TestChaosSkewDup: per-node clock skew plus duplicate delivery of
// heartbeats, job updates and launches, under churn. Every replay is
// verified side-effect free and skewed-but-healthy nodes must stay in
// service.
func TestChaosSkewDup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day of simulated time")
	}
	res, err := RunChaosSkewDup(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindClockSkew] == 0 {
		t.Errorf("no clock skew injected: %v", res.Report.Executed)
	}
	if res.Report.Executed[chaos.KindDupDeliver] == 0 {
		t.Errorf("no duplicate-delivery window opened: %v", res.Report.Executed)
	}
	for _, kind := range []string{"heartbeat", "job-update", "launch"} {
		if res.DupReplaysDelivered[kind] == 0 {
			t.Errorf("duplicate windows opened but no %s was actually replayed", kind)
		}
	}
	t.Logf("skews=%d dupWindows=%d replays=%v",
		res.Report.Executed[chaos.KindClockSkew],
		res.Report.Executed[chaos.KindDupDeliver], res.DupReplaysDelivered)
}

// TestChaosDataPlane: partitions that sever checkpoint transfers along
// with the control path, plus silent checkpoint-store corruption and a
// coordinator crash. The CRC frames must catch every damaged blob and
// restores must fall back to the previous intact generation.
func TestChaosDataPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosDataPlane(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindDataPartition] == 0 {
		t.Errorf("no data-plane partition executed: %v", res.Report.Executed)
	}
	if res.CkptFaultsInjected == 0 {
		t.Error("no checkpoint blobs were actually damaged")
	}
	if res.CkptCorruptionsDetected == 0 {
		t.Error("damage was injected but the CRC detector never fired")
	}
	t.Logf("ckptFaults=%d detected=%d", res.CkptFaultsInjected, res.CkptCorruptionsDetected)
}

// TestChaosWALFaultsSingleMutex: the WAL disk-fault schedule against
// the SingleMutex baseline store — the ROADMAP parity check that
// durability and recovery do not depend on store sharding.
func TestChaosWALFaultsSingleMutex(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosWALFaultsSingleMutex(42)
	requireClean(t, res, err)
	if res.WALFaultsInjected == 0 {
		t.Error("no disk faults were actually delivered")
	}
	if res.Recoveries == 0 {
		t.Error("no recovery exercised the damaged log")
	}
}

// TestChaosDeterministicSchedule: the same seed must produce the same
// fault schedule — a violation found in CI is replayable locally.
func TestChaosDeterministicSchedule(t *testing.T) {
	spec := chaos.Spec{
		Duration:           4 * time.Hour,
		Nodes:              []string{"a", "b", "c"},
		ChurnPerNodePerDay: 8,
		PartitionsPerDay:   12,
		CoordCrashes:       1,
	}
	a := chaos.Generate(spec, 7)
	b := chaos.Generate(spec, 7)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedules differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Kind != b[i].Kind || a[i].Node != b[i].Node {
			t.Fatalf("schedule diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChaosSabotageDetection: deliberately corrupt the store mid-run
// and prove the checker catches it — the acceptance test for the
// safety net itself. Each sabotage breaks a different invariant.
func TestChaosSabotageDetection(t *testing.T) {
	sabotages := []struct {
		rule  string
		wreck func(s db.Store)
	}{
		{"device-double-allocation", func(s db.Store) {
			_ = s.InsertJob(db.JobRecord{ID: "evil-dup", State: db.JobRunning,
				NodeID: "ws-1", DeviceID: "gpu0", ImageName: "img"})
			s.RecordAllocation(db.AllocationRecord{JobID: "evil-dup",
				NodeID: "ws-1", DeviceID: "gpu0", Start: Epoch})
		}},
		{"running-node-live", func(s db.Store) {
			_ = s.UpdateNode("ws-1", func(n *db.NodeRecord) { n.Status = db.NodeDeparted })
		}},
		{"alloc-matches-job", func(s db.Store) {
			for _, j := range s.JobsInState(db.JobRunning) {
				_ = s.UpdateJob(j.ID, func(r *db.JobRecord) { r.State = db.JobCompleted })
				return
			}
		}},
		{"pending-detached", func(s db.Store) {
			_ = s.InsertJob(db.JobRecord{ID: "evil-pend", State: db.JobPending,
				NodeID: "ws-2", ImageName: "img"})
		}},
	}
	runSabotages(t, sabotages, func(s db.Store) db.Store { return s })
}

// driftingStore simulates a store whose materialized indexes have
// drifted from the record maps: the indexed queries misreport while
// the ground-truth scans stay honest. The index-consistent invariant
// must catch exactly this.
type driftingStore struct {
	db.Store
}

func (d driftingStore) JobsInState(state db.JobState) []db.JobRecord {
	out := d.Store.JobsInState(state)
	if len(out) > 0 {
		return out[:len(out)-1] // the index "lost" a record
	}
	return out
}

func (d driftingStore) JobsOnNode(nodeID string) []db.JobRecord {
	return nil // the placement index "lost" every membership
}

// AuditIndexes masks the inner store's deep audit — the drift modelled
// here lives in the query results, which the scan-equivalence side of
// the invariant must catch on its own.
func (d driftingStore) AuditIndexes() []string { return nil }

// brokenChainSource models a checkpoint store whose fallback logic let
// damage through: it hands out chains that violate the structural
// contract. CheckCheckpoints must reject every one of them.
type brokenChainSource struct {
	chain []checkpoint.Checkpoint
	err   error
}

func (b brokenChainSource) RestoreChain(string) ([]checkpoint.Checkpoint, error) {
	return b.chain, b.err
}

// TestChaosSabotageCheckpointIntegrity: structurally broken restore
// chains — an incremental head, an unlinked base, regressing progress,
// a foreign job's link — must each trip checkpoint-integrity.
func TestChaosSabotageCheckpointIntegrity(t *testing.T) {
	jobs := []db.JobRecord{{ID: "j1", State: db.JobRunning}}
	cases := map[string]invariant.CheckpointSource{
		"head-is-increment": brokenChainSource{chain: []checkpoint.Checkpoint{
			{JobID: "j1", Seq: 2, Incremental: true, BaseSeq: 1},
		}},
		"unlinked-base": brokenChainSource{chain: []checkpoint.Checkpoint{
			{JobID: "j1", Seq: 1},
			{JobID: "j1", Seq: 3, Incremental: true, BaseSeq: 2},
		}},
		"progress-regression": brokenChainSource{chain: []checkpoint.Checkpoint{
			{JobID: "j1", Seq: 1, Progress: checkpoint.Progress{Step: 100}},
			{JobID: "j1", Seq: 2, Incremental: true, BaseSeq: 1, Progress: checkpoint.Progress{Step: 50}},
		}},
		"foreign-job-link": brokenChainSource{chain: []checkpoint.Checkpoint{
			{JobID: "j2", Seq: 1},
		}},
		"unresolvable": brokenChainSource{err: errors.New("backing store exploded")},
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			vs := invariant.CheckCheckpoints(src, jobs)
			if len(vs) == 0 {
				t.Fatal("broken chain went undetected")
			}
			for _, v := range vs {
				if v.Rule != "checkpoint-integrity" {
					t.Fatalf("unexpected rule %s", v.Rule)
				}
			}
		})
	}
	// And the legitimate cases stay silent: no checkpoints at all, or
	// checkpoints that survived nothing restorable.
	for _, err := range []error{checkpoint.ErrNoCheckpoint, checkpoint.ErrBadChain} {
		if vs := invariant.CheckCheckpoints(brokenChainSource{err: fmt.Errorf("wrap: %w", err)}, jobs); len(vs) != 0 {
			t.Fatalf("legitimate %v flagged: %v", err, vs)
		}
	}
}

// TestChaosSabotageSkewLiveness: a node whose only fault is clock skew
// but whose record dropped out of service must trip
// skew-bounded-liveness.
func TestChaosSabotageSkewLiveness(t *testing.T) {
	s := db.New(0)
	s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive})
	s.UpsertNode(db.NodeRecord{ID: "ws-2", Status: db.NodeUnreachable})
	if vs := invariant.CheckSkewLiveness(s, []string{"ws-1"}); len(vs) != 0 {
		t.Fatalf("healthy skewed node flagged: %v", vs)
	}
	vs := invariant.CheckSkewLiveness(s, []string{"ws-1", "ws-2", "ghost"})
	if len(vs) != 2 {
		t.Fatalf("want 2 violations (unreachable + unknown), got %v", vs)
	}
	for _, v := range vs {
		if v.Rule != "skew-bounded-liveness" {
			t.Fatalf("unexpected rule %s", v.Rule)
		}
	}
}

// TestChaosSabotageDuplicateSideEffects: a replay that mutates the
// store must trip no-duplicate-side-effects; a no-op replay must not.
func TestChaosSabotageDuplicateSideEffects(t *testing.T) {
	s := db.New(0)
	if vs := chaos.VerifyIdempotent(s, "clean", func() {}); len(vs) != 0 {
		t.Fatalf("side-effect-free replay flagged: %v", vs)
	}
	vs := chaos.VerifyIdempotent(s, "dirty", func() {
		s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive})
	})
	if len(vs) != 1 || vs[0].Rule != "no-duplicate-side-effects" {
		t.Fatalf("mutating replay not flagged: %v", vs)
	}
}

// TestChaosSabotageIndexDrift: an index that diverges from the record
// scan must trip the index-consistent rule.
func TestChaosSabotageIndexDrift(t *testing.T) {
	runSabotages(t, []struct {
		rule  string
		wreck func(s db.Store)
	}{
		{"index-consistent", func(db.Store) {}},
	}, func(s db.Store) db.Store { return driftingStore{s} })
}

// runSabotages drives a healthy campus, applies each sabotage, and
// asserts the checker reports the expected rule. view wraps the store
// the checker audits (identity for direct state corruption; a lying
// wrapper for index-drift modelling).
func runSabotages(t *testing.T, sabotages []struct {
	rule  string
	wreck func(s db.Store)
}, view func(db.Store) db.Store) {
	for _, sab := range sabotages {
		t.Run(sab.rule, func(t *testing.T) {
			campus, err := NewCampus(PaperCampus(), CampusConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer campus.Stop()
			for i := 0; i < 4; i++ {
				if _, err := campus.Coord.SubmitJob(
					TrainingJobSubmission("user", workload.SmallCNN, 10*time.Minute)); err != nil {
					t.Fatal(err)
				}
			}
			campus.Run(30 * time.Minute)

			checker := invariant.NewChecker()
			if vs := checker.Check(campus.Coord.DB()); len(vs) != 0 {
				t.Fatalf("campus unhealthy before sabotage: %v", vs)
			}
			sab.wreck(campus.Coord.DB())
			vs := checker.Check(view(campus.Coord.DB()))
			found := false
			for _, v := range vs {
				if v.Rule == sab.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("sabotage of %s went undetected (got %v)", sab.rule, vs)
			}
		})
	}
}

// TestChaosAggCrash: rack aggregators killed mid-flush-window under
// churn and a coordinator crash. Relay deaths may lose at most their
// open window (bounded lag); the aggregation-equivalence audit must
// find no fabricated or persistently lost liveness, and the tier must
// actually have carried traffic (beats folded, batches forwarded).
func TestChaosAggCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosAggCrash(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindAggCrash] == 0 {
		t.Errorf("no aggregator crash executed: %v", res.Report.Executed)
	}
	if res.Recoveries == 0 {
		t.Error("no coordinator kill/restart executed")
	}
	if res.AggFoldedBeats == 0 || res.AggForwards == 0 {
		t.Errorf("aggregation tier idle: folded=%d forwards=%d", res.AggFoldedBeats, res.AggForwards)
	}
	t.Logf("aggCrashes=%d folded=%d forwards=%d",
		res.Report.Executed[chaos.KindAggCrash], res.AggFoldedBeats, res.AggForwards)
}

// TestChaosAggPartition: aggregator upstream links severed while gray
// windows stream health events. Cut relays must refuse beats (direct
// fallback, never a black hole), health-carrying pass-throughs must
// re-deliver without loss or double-ingestion, and relays must resume
// folding after the heal.
func TestChaosAggPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day of simulated time")
	}
	res, err := RunChaosAggPartition(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindAggPartition] == 0 {
		t.Errorf("no aggregator partition executed: %v", res.Report.Executed)
	}
	if res.Report.Executed[chaos.KindGrayDegrade] == 0 {
		t.Errorf("no gray window opened: %v", res.Report.Executed)
	}
	if res.AggFoldedBeats == 0 || res.AggForwards == 0 {
		t.Errorf("aggregation tier idle: folded=%d forwards=%d", res.AggFoldedBeats, res.AggForwards)
	}
	t.Logf("aggPartitions=%d folded=%d forwards=%d",
		res.Report.Executed[chaos.KindAggPartition], res.AggFoldedBeats, res.AggForwards)
}
