package sim

import (
	"testing"
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

func TestPaperCampusTopology(t *testing.T) {
	defs := PaperCampus()
	if len(defs) != 11 {
		t.Fatalf("nodes = %d, want 11 (paper: 11 GPU servers)", len(defs))
	}
	if TotalGPUs(defs) != 22 {
		t.Fatalf("GPUs = %d, want 22 (8×3090 + 8×4090 + 2×A100 + 4×A6000)", TotalGPUs(defs))
	}
	counts := map[string]int{}
	for _, d := range defs {
		for _, g := range d.GPUs {
			counts[g.Model]++
		}
	}
	want := map[string]int{"RTX 3090": 8, "RTX 4090": 8, "A100": 2, "A6000": 4}
	for model, n := range want {
		if counts[model] != n {
			t.Errorf("%s count = %d, want %d", model, counts[model], n)
		}
	}
}

func TestNewCampusRegistersAllNodes(t *testing.T) {
	campus, err := NewCampus(PaperCampus(), CampusConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	nodes := campus.Coord.Nodes()
	if len(nodes) != 11 {
		t.Fatalf("registered nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Status != db.NodeActive {
			t.Errorf("node %s status = %s", n.ID, n.Status)
		}
	}
}

func TestCampusHeartbeatsKeepNodesAlive(t *testing.T) {
	campus, err := NewCampus(PaperCampus()[:3], CampusConfig{HeartbeatInterval: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	campus.Run(time.Hour)
	for _, n := range campus.Coord.Nodes() {
		if n.Status != db.NodeActive {
			t.Fatalf("node %s became %s despite heartbeats", n.ID, n.Status)
		}
	}
}

func TestCampusJobRunsToCompletion(t *testing.T) {
	campus, err := NewCampus(PaperCampus()[:2], CampusConfig{ProgressTick: 15 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	spec := workload.SmallCNN
	id, err := campus.Coord.SubmitJob(TrainingJobSubmission("u", spec, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	campus.Run(3 * time.Hour)
	st, _ := campus.Coord.JobStatus(id)
	if st.State != db.JobCompleted {
		t.Fatalf("state = %s", st.State)
	}
	// Busy accounting reflects the run.
	if campus.BusyGPUTime(campus.Clock.Now()) <= 0 {
		t.Fatal("no busy GPU time recorded")
	}
	u := campus.Utilization(campus.Clock.Now())
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestUtilizationZeroAtEpoch(t *testing.T) {
	campus, err := NewCampus(PaperCampus()[:1], CampusConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	if u := campus.Utilization(Epoch); u != 0 {
		t.Fatalf("utilization at epoch = %v", u)
	}
}

func TestDiurnalFactorShape(t *testing.T) {
	// Wednesday 2025-09-03.
	wedDay := time.Date(2025, 9, 3, 14, 0, 0, 0, time.UTC)
	wedNight := time.Date(2025, 9, 3, 3, 0, 0, 0, time.UTC)
	sat := time.Date(2025, 9, 6, 14, 0, 0, 0, time.UTC)
	if diurnalFactor(wedDay) <= diurnalFactor(wedNight) {
		t.Fatal("daytime should outweigh night")
	}
	if diurnalFactor(wedDay) <= diurnalFactor(sat) {
		t.Fatal("weekday should outweigh weekend")
	}
}

func TestOffPeakFactorInverse(t *testing.T) {
	wedDay := time.Date(2025, 9, 3, 14, 0, 0, 0, time.UTC)
	wedNight := time.Date(2025, 9, 3, 3, 0, 0, 0, time.UTC)
	if OffPeakFactor(wedNight) <= OffPeakFactor(wedDay) {
		t.Fatal("off-peak factor should favour nights")
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	count := func() int {
		d := NewDemand(7)
		clock := newSimClock()
		n := d.PoissonArrivals(clock, Epoch, 7*24*time.Hour, 10, func(time.Time) {})
		return n
	}
	if count() != count() {
		t.Fatal("same seed produced different arrival counts")
	}
}

func TestPoissonArrivalsRateScales(t *testing.T) {
	d1 := NewDemand(1)
	d2 := NewDemand(1)
	n1 := d1.PoissonArrivals(newSimClock(), Epoch, 14*24*time.Hour, 5, func(time.Time) {})
	n2 := d2.PoissonArrivals(newSimClock(), Epoch, 14*24*time.Hour, 50, func(time.Time) {})
	if n2 < n1*5 {
		t.Fatalf("rate 50 produced %d vs rate 5's %d — scaling broken", n2, n1)
	}
}

func TestPoissonArrivalsFireOnClock(t *testing.T) {
	d := NewDemand(3)
	clock := newSimClock()
	fired := 0
	n := d.PoissonArrivals(clock, Epoch, 24*time.Hour, 20, func(time.Time) { fired++ })
	clock.Advance(24 * time.Hour)
	if fired != n {
		t.Fatalf("fired %d of %d scheduled arrivals", fired, n)
	}
}

func TestSubmissionBuilders(t *testing.T) {
	spec := workload.SmallCNN
	req := TrainingJobSubmission("alice", spec, 5*time.Minute)
	if req.Kind != "batch" || req.Training == nil || req.CheckpointIntervalSec != 300 {
		t.Fatalf("training submission = %+v", req)
	}
	if req.GPUMemMiB != spec.GPUMemMiB {
		t.Fatalf("memory constraint not propagated")
	}
	s := workload.Session{Duration: time.Hour, GPUMemMiB: 4096}
	sreq := SessionSubmission("bob", s)
	if sreq.Kind != "interactive" || sreq.SessionSeconds != 3600 || sreq.Priority <= 0 {
		t.Fatalf("session submission = %+v", sreq)
	}
}

func TestRepeatSpec(t *testing.T) {
	specs := repeatSpec(gpu.A100, 3)
	if len(specs) != 3 || specs[2].Model != "A100" {
		t.Fatalf("repeatSpec = %+v", specs)
	}
}
