package sim

import (
	"time"

	"gpunion/internal/api"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/migration"
	"gpunion/internal/workload"
)

// Fig3Config parameterises the migration experiment (paper Fig. 3 and
// §4 "Interruption Scenarios"): 20 deep-learning training jobs on
// volunteer provider nodes over one week, with provider interruptions at
// 0.5–3.2 events/day/node across three scenario classes.
type Fig3Config struct {
	// Days is the experiment horizon (paper: 7).
	Days int
	// Jobs is the size of the training corpus (paper: 20).
	Jobs int
	// InterruptionsPerDay is the per-volunteer-node event rate
	// (paper range: 0.5–3.2).
	InterruptionsPerDay float64
	// CheckpointInterval is the periodic ALC cadence (default 10 min).
	CheckpointInterval time.Duration
	// Seed drives the stochastic processes.
	Seed int64
	// ScenarioWeights orders [scheduled, emergency, temporary]
	// probabilities; zero value means uniform thirds.
	ScenarioWeights [3]float64
	// Deadline is the time bound for "successfully migrated within the
	// specified time" (default 30 s of restore-transfer delay).
	Deadline time.Duration
}

// ScenarioResult aggregates one interruption class.
type ScenarioResult struct {
	// Events is the number of provider interruptions of this class.
	Events int
	// Displaced is how many running jobs those events hit.
	Displaced int
	// MigrationSuccessRate is the fraction of displaced jobs relaunched
	// within the configured deadline (the paper's 94% for scheduled
	// departures). Failed migrations count against it.
	MigrationSuccessRate float64
	// MeanWorkLost is the average compute time redone per displaced
	// job (emergency: ≈ the checkpoint interval; scheduled: ≈ 0).
	MeanWorkLost time.Duration
	// MeanDowntime is the average checkpoint-transfer delay before the
	// job ran again.
	MeanDowntime time.Duration
}

// Fig3Result is the full experiment outcome.
type Fig3Result struct {
	Scheduled ScenarioResult
	Emergency ScenarioResult
	Temporary ScenarioResult
	// MigratedBackFraction is the share of temporarily-displaced jobs
	// that returned to their original node when the provider
	// reconnected (paper: 67%).
	MigratedBackFraction float64
	// CheckpointInterval echoes the configured cadence for reporting.
	CheckpointInterval time.Duration
}

// repeatSpec builds n copies of a GPU spec.
func repeatSpec(s gpu.Spec, n int) []gpu.Spec {
	out := make([]gpu.Spec, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// fig3Campus is the migration-experiment topology: two volunteer
// provider nodes (the paper's interruption subjects) and two stable
// nodes that absorb displaced work.
func fig3Campus() []NodeDef {
	return []NodeDef{
		{ID: "vol-1", GPUs: repeatSpec(gpu.RTX3090, 6), Lab: "volunteer"},
		{ID: "vol-2", GPUs: repeatSpec(gpu.RTX3090, 6), Lab: "volunteer"},
		{ID: "stable-1", GPUs: repeatSpec(gpu.RTX4090, 8), Lab: "stable"},
		{ID: "stable-2", GPUs: repeatSpec(gpu.A6000, 12), Lab: "stable"},
	}
}

// fig3Spec draws one hours-scale training job (CNN and transformer mix,
// roughly 2–6 h on a 3090) that fits the volunteer nodes' 24 GiB
// devices. The corpus turns over during the week, so fresh placements
// keep landing across every node, volunteers included.
func fig3Spec(rng interface{ Float64() float64 }, i int) workload.TrainingSpec {
	bases := []workload.TrainingSpec{workload.SmallCNN, workload.SmallTransformer, workload.LargeCNN}
	base := bases[i%len(bases)]
	s := base
	if base.StateBytes < 1e9 {
		s.TotalSteps = base.TotalSteps * 3 // stretch SmallCNN into the band
	}
	f := 0.8 + rng.Float64()*0.4
	s.TotalSteps = int64(float64(s.TotalSteps) * f)
	s.StateBytes = int64(float64(base.StateBytes) * f)
	if s.StateBytes > 1_800_000_000 {
		s.StateBytes = 1_800_000_000
	}
	return s
}

// RunFig3 executes the interruption experiment.
func RunFig3(cfg Fig3Config) (Fig3Result, error) {
	if cfg.Days <= 0 {
		cfg.Days = 7
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 20
	}
	if cfg.InterruptionsPerDay <= 0 {
		cfg.InterruptionsPerDay = 1.6
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 10 * time.Minute
	}
	if cfg.ScenarioWeights == [3]float64{} {
		cfg.ScenarioWeights = [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	span := time.Duration(cfg.Days) * 24 * time.Hour

	campus, err := NewCampus(fig3Campus(), CampusConfig{
		HeartbeatInterval: 30 * time.Second,
		ProgressTick:      30 * time.Second,
		WithNetwork:       true,
	})
	if err != nil {
		return Fig3Result{}, err
	}
	defer campus.Stop()

	tracker := &fig3Tracker{campus: campus}
	demand := NewDemand(cfg.Seed + 77)
	rng := demand.Rand()

	// Maintain a population of cfg.Jobs concurrent training jobs: each
	// completion is followed by a fresh submission, so the experiment
	// observes a steadily loaded platform with natural turnover.
	corpusRng := NewDemand(cfg.Seed + 99).Rand()
	corpusN := 0
	submitNext := func() {
		spec := fig3Spec(corpusRng, corpusN)
		corpusN++
		_, _ = campus.Coord.SubmitJob(TrainingJobSubmission("researcher", spec, cfg.CheckpointInterval))
	}
	campus.Bus.SubscribeFunc(func(eventbus.Event) {
		if !campus.Clock.Now().Before(Epoch.Add(span - time.Hour)) {
			return
		}
		// Population control: completions are announced by both the
		// agent and the coordinator, so top up against the live count
		// instead of submitting once per event.
		d := campus.Coord.DB()
		active := d.CountJobsInState(db.JobPending) +
			d.CountJobsInState(db.JobRunning) +
			d.CountJobsInState(db.JobMigrating)
		for ; active < cfg.Jobs; active++ {
			submitNext()
		}
	}, eventbus.JobCompleted)
	for i := 0; i < cfg.Jobs; i++ {
		submitNext()
	}

	// Interruption process per volunteer node: exponential inter-event
	// times at the configured rate, scenario drawn by weight, provider
	// returning after 30 min – 3 h.
	for _, nodeID := range []string{"vol-1", "vol-2"} {
		nodeID := nodeID
		var arm func()
		arm = func() {
			gap := time.Duration(rng.ExpFloat64() / cfg.InterruptionsPerDay * float64(24*time.Hour))
			if gap < 5*time.Minute {
				gap = 5 * time.Minute
			}
			campus.Clock.AfterFunc(gap, func() {
				if campus.Clock.Now().After(Epoch.Add(span)) {
					return
				}
				ag := campus.Agents[nodeID]
				if !ag.Departed() {
					scenario := drawScenario(rng.Float64(), cfg.ScenarioWeights)
					tracker.interrupt(nodeID, scenario)
					ret := 30*time.Minute + time.Duration(rng.Int63n(int64(90*time.Minute)))
					campus.Clock.AfterFunc(ret, func() { tracker.bringBack(nodeID, scenario) })
				}
				arm()
			})
		}
		arm()
	}

	campus.Run(span)
	return tracker.result(campus, cfg), nil
}

func drawScenario(x float64, w [3]float64) api.DepartReason {
	total := w[0] + w[1] + w[2]
	x *= total
	if x < w[0] {
		return api.DepartScheduled
	}
	if x < w[0]+w[1] {
		return api.DepartEmergency
	}
	return api.DepartTemporary
}

// fig3Tracker instruments interruptions: it records, per event, the
// true progress of each displaced job just before the departure, and
// the checkpointed progress available afterwards — the difference is
// the work lost.
type fig3Tracker struct {
	campus *Campus

	events            map[api.DepartReason]int
	displaced         map[api.DepartReason]int
	lost              map[api.DepartReason]time.Duration
	tempDisplacedJobs int
}

func (t *fig3Tracker) init() {
	if t.events == nil {
		t.events = make(map[api.DepartReason]int)
		t.displaced = make(map[api.DepartReason]int)
		t.lost = make(map[api.DepartReason]time.Duration)
	}
}

// interrupt executes one provider departure and accounts its damage.
func (t *fig3Tracker) interrupt(nodeID string, scenario api.DepartReason) {
	t.init()
	t.events[scenario]++
	ag := t.campus.Agents[nodeID]

	// Pre-departure truth: each running job's actual step.
	preSteps := make(map[string]int64)
	stepTimes := make(map[string]time.Duration)
	for _, job := range t.campus.Coord.DB().JobsOnNode(nodeID) {
		if wj, ok := ag.RunningJob(job.ID); ok {
			preSteps[job.ID] = wj.Step()
			stepTimes[job.ID] = wj.Spec.StepTime(gpu.RTX3090)
		}
	}

	grace := 5 * time.Minute
	if scenario == api.DepartEmergency {
		grace = 0
	}
	ag.Depart(scenario, grace)

	// Post-departure accounting: lost work = true progress minus the
	// progress recoverable from the latest checkpoint.
	for jobID, pre := range preSteps {
		t.displaced[scenario]++
		if scenario == api.DepartTemporary {
			t.tempDisplacedJobs++
		}
		var ckStep int64
		if ck, err := t.campus.Ckpts.Latest(jobID); err == nil {
			ckStep = ck.Progress.Step
		}
		lostSteps := pre - ckStep
		if lostSteps < 0 {
			lostSteps = 0
		}
		t.lost[scenario] += time.Duration(lostSteps) * stepTimes[jobID]
	}
}

// bringBack returns the provider to the platform.
func (t *fig3Tracker) bringBack(nodeID string, scenario api.DepartReason) {
	ag := t.campus.Agents[nodeID]
	if !ag.Departed() {
		return // already back
	}
	ag.Return()
	if scenario != api.DepartTemporary {
		// Scheduled/emergency exits re-join via fresh registration.
		resp, err := t.campus.Coord.Register(
			ag.RegisterRequest("inproc://"+nodeID, 1<<40),
			core.LocalAgent{A: ag})
		if err == nil {
			ag.SetToken(resp.Token)
		}
	}
	// Temporary departures resume via their next heartbeat, which the
	// standing heartbeat loop sends automatically.
}

func (t *fig3Tracker) result(campus *Campus, cfg Fig3Config) Fig3Result {
	t.init()
	stats := campus.Coord.Migration().Stats()
	build := func(scenario api.DepartReason, reason migration.Reason) ScenarioResult {
		r := ScenarioResult{
			Events:               t.events[scenario],
			Displaced:            t.displaced[scenario],
			MigrationSuccessRate: stats.RateWithin(reason, cfg.Deadline),
			MeanDowntime:         stats.MeanDowntime(reason),
		}
		if n := t.displaced[scenario]; n > 0 {
			r.MeanWorkLost = t.lost[scenario] / time.Duration(n)
		}
		return r
	}
	res := Fig3Result{
		Scheduled:          build(api.DepartScheduled, migration.ReasonScheduled),
		Emergency:          build(api.DepartEmergency, migration.ReasonEmergency),
		Temporary:          build(api.DepartTemporary, migration.ReasonTemporary),
		CheckpointInterval: cfg.CheckpointInterval,
	}
	if t.tempDisplacedJobs > 0 {
		res.MigratedBackFraction = float64(stats.Successes[migration.ReasonMigrateBack]) /
			float64(t.tempDisplacedJobs)
	}
	return res
}
