package sim

// The aggregation sabotage battery: each test wires a deliberately
// misbehaving relay into the equivalence harness and proves the
// `aggregation-equivalence` audit fires. The point is negative
// coverage — the chaos schedules and the property battery show honest
// aggregation is invisible; these show the audit is not vacuous, for
// each of the four ways a relay can lie: silently dropping a node's
// folded liveness, fabricating an advance no agent reported, replaying
// an already-forwarded window, and fencing a window to a leader epoch
// it has already seen superseded.

import (
	"strings"
	"testing"
	"time"

	"gpunion/internal/api"
)

// steadyRounds is a churn-free, health-free schedule: every node beats
// every round, telemetry every 4th beat, everything else folds. The
// sabotage effects are then the only signal in the audit.
func steadyRounds(n int) []equivRound { return make([]equivRound, n) }

// sabotageLag is the audit tolerance the sabotage checks run with —
// generous enough that honest bounded lag (zero here, the schedule
// quiesces) could never trip it.
const sabotageLag = 90 * time.Second

func requireViolation(t *testing.T, vs []string, substr string) {
	t.Helper()
	for _, v := range vs {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("audit did not fire %q; violations: %v", substr, vs)
}

func violationDetails(arm *equivArm, lag time.Duration) []string {
	var out []string
	for _, v := range arm.aggAudit.Check(arm.store, lag) {
		out = append(out, v.Detail)
	}
	return out
}

// TestAggSabotageDroppedDelta: a relay whose windows silently lose one
// node's folded deltas. The victim's beats are acked locally but its
// stored liveness freezes at its last pass-through, so the audit's
// dropped-liveness rule must fire once the gap outgrows the tolerance.
// 38 rounds put the victim's last pass-through (telemetry, beat 36)
// two folded-and-dropped beats behind its newest ack.
func TestAggSabotageDroppedDelta(t *testing.T) {
	const victim = "eq-00"
	hooks := &equivHooks{batch: func(b *api.AggregatedBeat) {
		kept := b.Deltas[:0]
		for _, d := range b.Deltas {
			if d.NodeID != victim {
				kept = append(kept, d)
			}
		}
		b.Deltas = kept
	}}
	arm := newEquivArm(t, 6, 2, hooks)
	defer arm.stop()
	arm.play(t, steadyRounds(38))
	if arm.foldedBeats() == 0 {
		t.Fatal("nothing folded — sabotage never had a delta to drop")
	}
	vs := violationDetails(arm, sabotageLag)
	requireViolation(t, vs, "dropped liveness")
	requireViolation(t, vs, victim)
}

// TestAggSabotageFabricatedAdvance: a relay that re-stamps one node's
// folded deltas 37 seconds into the future — liveness instants no
// agent ever reported. The store lands on a fabricated instant outside
// the acknowledged set and the fabrication rule must fire.
func TestAggSabotageFabricatedAdvance(t *testing.T) {
	const victim = "eq-01"
	hooks := &equivHooks{batch: func(b *api.AggregatedBeat) {
		for i := range b.Deltas {
			if b.Deltas[i].NodeID == victim {
				b.Deltas[i].At = b.Deltas[i].At.Add(37 * time.Second)
			}
		}
	}}
	arm := newEquivArm(t, 6, 2, hooks)
	defer arm.stop()
	arm.play(t, steadyRounds(38))
	vs := violationDetails(arm, sabotageLag)
	requireViolation(t, vs, "fabricated advance")
	requireViolation(t, vs, victim)
}

// TestAggSabotageReplayedBatch: a relay that re-forwards a window it
// already sent. The coordinator absorbs the replay — the per-node
// sequence guard and the forward-only beat buffer make it a no-op, and
// the test asserts the store is byte-identical across the replay — but
// the audit's window-sequence rule must still flag the relay.
func TestAggSabotageReplayedBatch(t *testing.T) {
	var saved *api.AggregatedBeat
	hooks := &equivHooks{batch: func(b *api.AggregatedBeat) {
		if saved == nil && len(b.Deltas) > 0 {
			cp := *b
			cp.Deltas = append([]api.AggBeatDelta(nil), b.Deltas...)
			cp.Beats = append([]api.AggPassthrough(nil), b.Beats...)
			saved = &cp
		}
	}}
	arm := newEquivArm(t, 6, 2, hooks)
	defer arm.stop()
	arm.play(t, steadyRounds(12))
	if saved == nil {
		t.Fatal("no delta-carrying window was ever forwarded")
	}
	if vs := violationDetails(arm, sabotageLag); len(vs) != 0 {
		t.Fatalf("audit dirty before the replay: %v", vs)
	}

	before := arm.exportNormalized()
	// The relay resends the captured wire bytes.
	arm.aggAudit.ObserveForward(saved.AggregatorID, saved.LeaderEpoch, saved.WindowSeq)
	if _, err := arm.coord.IngestAggregated(*saved); err != nil {
		t.Fatalf("replayed batch rejected outright: %v", err)
	}
	if after := arm.exportNormalized(); string(before) != string(after) {
		t.Error("replayed window changed the store — the ingest path is not idempotent")
	}
	requireViolation(t, violationDetails(arm, sabotageLag), "replayed window")
}

// TestAggSabotageStaleEpoch: the upstream's responses announce leader
// epoch 2 (a failover the relay observed and must honour), then the
// relay forwards a window fenced to epoch 1. The epoch-regression rule
// must fire even though the standalone coordinator's fence lets the
// batch through.
func TestAggSabotageStaleEpoch(t *testing.T) {
	const bumped = uint64(2)
	tampered := false
	hooks := &equivHooks{}
	hooks.resp = func(r *api.AggregatedBeatResponse) {
		if r.LeaderEpoch < bumped {
			r.LeaderEpoch = bumped
		}
	}
	hooks.batch = func(b *api.AggregatedBeat) {
		if !tampered && b.LeaderEpoch == bumped {
			b.LeaderEpoch = bumped - 1
			tampered = true
		}
	}
	arm := newEquivArm(t, 6, 2, hooks)
	defer arm.stop()
	arm.play(t, steadyRounds(12))
	if !tampered {
		t.Fatal("the relay never learned the bumped epoch — sabotage never ran")
	}
	requireViolation(t, violationDetails(arm, sabotageLag), "after learning epoch 2")
}
