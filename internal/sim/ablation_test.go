package sim

import (
	"testing"
	"time"
)

func TestCheckpointIntervalSweepTradeoff(t *testing.T) {
	pts, err := RunCheckpointIntervalSweep(
		[]time.Duration{5 * time.Minute, 30 * time.Minute}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	short, long := pts[0], pts[1]
	// Shorter intervals bound work loss tighter...
	if short.MeanEmergencyLoss >= long.MeanEmergencyLoss {
		t.Errorf("loss should grow with interval: 5m=%v 30m=%v",
			short.MeanEmergencyLoss, long.MeanEmergencyLoss)
	}
	// ...at the cost of more backup traffic.
	if short.CheckpointBytes <= long.CheckpointBytes {
		t.Errorf("traffic should shrink with interval: 5m=%d 30m=%d",
			short.CheckpointBytes, long.CheckpointBytes)
	}
	// Loss stays bounded by the interval in both arms.
	for _, p := range pts {
		if p.MeanEmergencyLoss > p.Interval {
			t.Errorf("interval %v: loss %v exceeds the interval", p.Interval, p.MeanEmergencyLoss)
		}
	}
}

func TestStrategyAblationBestFitProtectsBigGPUs(t *testing.T) {
	rows, err := RunStrategyAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyResult{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	for _, name := range []string{"round-robin", "best-fit", "least-loaded"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("strategy %s missing", name)
		}
		if r.LargeJobsPlaced == 0 {
			t.Errorf("%s placed no large jobs", name)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s utilization = %v", name, r.Utilization)
		}
	}
	// Best-fit keeps the A100s free for the jobs that need them, so
	// large jobs wait less than under round-robin.
	if byName["best-fit"].MeanLargeJobWait >= byName["round-robin"].MeanLargeJobWait {
		t.Errorf("best-fit wait %v should beat round-robin %v",
			byName["best-fit"].MeanLargeJobWait, byName["round-robin"].MeanLargeJobWait)
	}
}
