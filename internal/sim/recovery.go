package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/wal"
	"gpunion/internal/workload"
)

// CrashRecoveryConfig tunes the coordinator crash/restart scenario.
type CrashRecoveryConfig struct {
	// Dir is the WAL directory; empty means a temp dir removed when the
	// run finishes.
	Dir string
	// Nodes is how many 2×RTX3090 provider nodes join (default 4).
	Nodes int
	// Jobs is how many training jobs are submitted — choose more than
	// 2×Nodes so a tail is still pending when the coordinator dies
	// (default 12).
	Jobs int
	// MidSnapshot also takes an async checkpoint partway through, so
	// recovery exercises snapshot + tail replay rather than a pure log
	// replay (default true; see NoSnapshot).
	NoSnapshot bool
	// PostRecovery is how long the simulation runs after the restart
	// (default 4h — enough for every SmallCNN job to finish).
	PostRecovery time.Duration
}

// CrashRecoveryResult is what the scenario measured.
type CrashRecoveryResult struct {
	SubmittedJobs  int
	PendingAtCrash int
	RunningAtCrash int

	// Recovery fidelity: the restored store versus the pre-crash store.
	RecoveredJobs  int
	RecoveredNodes int
	NodesIntact    bool
	JobsIntact     bool
	AllocsIntact   bool
	Recovery       wal.RecoveryResult

	// Post-restart liveness: the recovered queue must drain without any
	// resubmission.
	CompletedAfterRecovery int
	LostJobs               int
	NewJobID               string
}

// RunCrashRecovery builds a small campus persisted through a write-ahead
// log, kills the coordinator mid-run (the process state — agent
// handles, relaunch metadata, timers — is discarded; only the WAL
// directory and the LAN checkpoint store survive, as they would a real
// crash), then boots a fresh coordinator from snapshot + log, re-arms
// failure detection, lets the agents re-register, and verifies that
// the job table survived byte-for-byte and that the recovered pending
// queue drains to completion without any job being resubmitted.
func RunCrashRecovery(cfg CrashRecoveryConfig) (CrashRecoveryResult, error) {
	var res CrashRecoveryResult
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 12
	}
	if cfg.PostRecovery <= 0 {
		cfg.PostRecovery = 4 * time.Hour
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "gpunion-wal-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	clock := simclock.NewSim(Epoch)
	// The checkpoint store models the LAN-accessible file system: it
	// outlives the coordinator process, like the WAL directory.
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	store1 := db.New(0)
	mgr1, err := wal.Open(dir, store1, wal.Config{})
	if err != nil {
		return res, err
	}
	coordCfg := core.Config{HeartbeatInterval: time.Minute, BatchSize: 8}
	coord1, err := core.New(coordCfg, clock, store1, ckpts, bus)
	if err != nil {
		return res, err
	}

	// ref lets the agents' heartbeat loops survive the coordinator they
	// were started under: beats are dropped while the coordinator is
	// down and resume against its successor — exactly what a real node
	// daemon's retry loop does.
	ref := &coordRef{}
	ref.set(coord1)

	agents := make([]*agent.Agent, cfg.Nodes)
	for i := range agents {
		id := fmt.Sprintf("node-%02d", i+1)
		rt := container.NewRuntime(container.DefaultImages(),
			gpu.NewMixedInventory(gpu.RTX3090, gpu.RTX3090), 0, 0)
		ag := agent.New(agent.Config{MachineID: id, Kernel: "5.15", ProgressTick: 30 * time.Second},
			clock, rt, ckpts, bus, coord1)
		if err := registerAgent(ref, ag); err != nil {
			return res, err
		}
		agents[i] = ag
		heartbeatVia(clock, ref, ag, time.Minute)
	}

	for i := 0; i < cfg.Jobs; i++ {
		spec := workload.SmallCNN
		req := TrainingJobSubmission(fmt.Sprintf("user-%d", i%3), spec, 5*time.Minute)
		if _, err := coord1.SubmitJob(req); err != nil {
			return res, err
		}
	}
	res.SubmittedJobs = cfg.Jobs

	clock.Advance(10 * time.Minute)
	if !cfg.NoSnapshot {
		// Async checkpoint under live traffic; the log keeps the tail.
		if err := mgr1.Checkpoint(); err != nil {
			return res, err
		}
	}
	clock.Advance(5 * time.Minute)

	res.PendingAtCrash = store1.CountJobsInState(db.JobPending)
	res.RunningAtCrash = store1.CountJobsInState(db.JobRunning)
	before := store1.ExportState()

	// --- Crash. Only what fsync guaranteed survives: no final
	// snapshot, no handover. The old coordinator's in-memory world
	// (agent handles, relaunch metadata, sweep timers) dies here.
	ref.set(nil)
	coord1.Stop()
	if err := mgr1.Close(); err != nil {
		return res, err
	}

	// --- Restart: recover a fresh store from snapshot + WAL tail.
	store2 := db.New(0)
	mgr2, err := wal.Open(dir, store2, wal.Config{})
	if err != nil {
		return res, err
	}
	res.Recovery = mgr2.Recovery
	after := store2.ExportState()
	res.RecoveredJobs = len(after.Jobs)
	res.RecoveredNodes = len(after.Nodes)
	res.NodesIntact = jsonEqual(before.Nodes, after.Nodes)
	res.JobsIntact = jsonEqual(before.Jobs, after.Jobs)
	res.AllocsIntact = jsonEqual(before.Allocations, after.Allocations)

	coord2, err := core.New(coordCfg, clock, store2, ckpts, bus)
	if err != nil {
		return res, err
	}
	coord2.RecoverState()
	defer coord2.Stop()
	defer mgr2.Close()
	ref.set(coord2)

	// Agents notice the restart and re-register (their running
	// workloads never stopped).
	for _, ag := range agents {
		ag.SetEndpoints([]agent.Endpoint{{ID: "coordinator", Notifier: coord2}})
		if err := registerAgent(ref, ag); err != nil {
			return res, err
		}
	}

	// A post-restart submission must not collide with recovered IDs.
	newID, err := coord2.SubmitJob(TrainingJobSubmission("user-new", workload.SmallCNN, 5*time.Minute))
	if err != nil {
		return res, err
	}
	res.NewJobID = newID

	clock.Advance(cfg.PostRecovery)

	res.CompletedAfterRecovery = store2.CountJobsInState(db.JobCompleted)
	res.LostJobs = cfg.Jobs + 1 - len(store2.ListJobs())
	return res, nil
}

// coordRef is a swappable coordinator handle for loops that outlive one
// coordinator process.
type coordRef struct {
	mu sync.Mutex
	c  *core.Coordinator
}

func (r *coordRef) set(c *core.Coordinator) {
	r.mu.Lock()
	r.c = c
	r.mu.Unlock()
}

func (r *coordRef) get() *core.Coordinator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c
}

// registerAgent registers ag with the current coordinator and stores
// the issued credential.
func registerAgent(ref *coordRef, ag *agent.Agent) error {
	coord := ref.get()
	resp, err := coord.Register(ag.RegisterRequest("inproc://"+ag.MachineID(), 1<<40), core.LocalAgent{A: ag})
	if err != nil {
		return err
	}
	ag.SetToken(resp.Token)
	return nil
}

// heartbeatVia arms a recurring heartbeat that follows the coordinator
// reference; beats during an outage are silently dropped, and an
// expired or unknown credential triggers re-registration.
func heartbeatVia(clock *simclock.Sim, ref *coordRef, ag *agent.Agent, interval time.Duration) {
	var loop func()
	loop = func() {
		if coord := ref.get(); coord != nil && !ag.Departed() {
			resp, err := coord.Heartbeat(ag.HeartbeatRequest())
			if err == nil && resp.Reregister {
				_ = registerAgent(ref, ag)
			}
		}
		clock.AfterFunc(interval, loop)
	}
	clock.AfterFunc(interval, loop)
}

// jsonEqual compares two values by their canonical JSON encoding — the
// "byte-equal" check of the recovery acceptance criterion.
func jsonEqual(a, b any) bool {
	ja, err1 := json.Marshal(a)
	jb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ja) == string(jb)
}
