package sim

import (
	"fmt"
	"testing"
	"time"

	"gpunion/internal/chaos"
	"gpunion/internal/db"
	"gpunion/internal/wal"

	"gpunion/internal/invariant"
)

// TestFailoverLeaderHandoff: the scripted replication demo. The standby
// fences while the leader lives, the kill leaves the slot vacant for
// the dead grant plus the skew grace, the promotion loses nothing that
// was acked, and the fleet finishes the inherited queue under the new
// epoch.
func TestFailoverLeaderHandoff(t *testing.T) {
	res, err := RunFailover(FailoverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StandbyRejectedBeforePromotion {
		t.Error("standby accepted (or mis-hinted) a submission while the leader was alive")
	}
	if res.EpochAtKill != 1 || res.NewEpoch != 2 {
		t.Errorf("epochs: kill=%d new=%d, want 1→2", res.EpochAtKill, res.NewEpoch)
	}
	// The slot must stay vacant for the remaining grant plus the 2 min
	// skew-tolerance grace — but not much longer.
	if res.PromotionDelay < 2*time.Minute || res.PromotionDelay > 3*time.Minute {
		t.Errorf("promotion delay %v, want within (2m, 3m]", res.PromotionDelay)
	}
	for _, v := range res.LostAcked {
		t.Errorf("lost acked mutation: %s", v)
	}
	if res.RunningAtKill == 0 || res.PendingAtKill == 0 {
		t.Errorf("kill hit a dull moment: running=%d pending=%d", res.RunningAtKill, res.PendingAtKill)
	}
	if res.LostJobs != 0 {
		t.Errorf("%d job(s) vanished across the handoff", res.LostJobs)
	}
	if res.CompletedAfterFailover != res.SubmittedJobs {
		t.Errorf("completed %d of %d after failover", res.CompletedAfterFailover, res.SubmittedJobs)
	}
}

// TestChaosLeaderFailover: unannounced leader kills under churn on the
// replicated pair. Every promotion must pass the zero-lost-acked audit
// and the leadership-protocol audits, and the platform must keep
// completing work.
func TestChaosLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a replicated campus day")
	}
	res, err := RunChaosLeaderFailover(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindLeaderKill] == 0 {
		t.Errorf("no leader kills executed: %v", res.Report.Executed)
	}
	if res.Failovers == 0 {
		t.Error("no standby promotion completed")
	}
	t.Logf("failovers=%d", res.Failovers)
}

// TestChaosSplitBrain: the serving leader isolated from the arbiter
// with a skewed clock while a rival races it. Zero violations means
// every window resolved correctly — short ones with the original
// leader resuming, long ones with a fenced zombie and a clean handoff.
func TestChaosSplitBrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a replicated campus day")
	}
	res, err := RunChaosSplitBrain(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindSplitBrain] == 0 {
		t.Errorf("no split-brain windows executed: %v", res.Report.Executed)
	}
	t.Logf("failovers=%d", res.Failovers)
}

// TestFailoverAuditDetectsDroppedRecord sabotages the shipping path —
// one durable, acknowledged record silently never reaches the standby —
// and proves the zero-lost-acked audit catches exactly that at
// promotion time. This is the test of the test: a detector that stays
// green under sabotage detects nothing.
func TestFailoverAuditDetectsDroppedRecord(t *testing.T) {
	dir := t.TempDir()
	leader := db.New(0)
	standby := db.New(0)
	follower := wal.NewFollower(standby)
	shipper := wal.NewShipper(dir)

	const sabotaged = 5 // the LSN the broken shipper drops
	mgr, err := wal.Open(dir, leader, wal.Config{
		OnDurable: func(db.Mutation) {
			recs, err := shipper.Poll()
			if err != nil {
				t.Fatal(err)
			}
			kept := recs[:0]
			for _, m := range recs {
				if m.LSN == sabotaged {
					continue // the sabotage: acked upstream, never shipped
				}
				kept = append(kept, m)
			}
			if err := follower.Offer(kept); err != nil {
				t.Fatal(err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	for i := 1; i <= 8; i++ {
		leader.UpsertNode(db.NodeRecord{ID: fmt.Sprintf("node-%02d", i), Status: db.NodeActive})
	}

	// Promotion: drain applies around the hole (it cannot wait for a
	// record that will never arrive), then the audit runs.
	if _, err := follower.Drain(); err != nil {
		t.Fatal(err)
	}
	vs := invariant.CheckNoLostAcked(leader.ExportState(), standby.ExportState())
	if len(vs) == 0 {
		t.Fatal("audit stayed green although an acked record never reached the standby")
	}
	found := false
	for _, v := range vs {
		if v.Rule != "zero-lost-acked-mutations" {
			t.Errorf("unexpected rule %q: %s", v.Rule, v)
		} else {
			found = true
		}
	}
	if !found {
		t.Fatal("no zero-lost-acked-mutations violation reported")
	}

	// Control: with the sabotage healed (full resync), the audit passes.
	if err := follower.Resync(dir); err != nil {
		t.Fatal(err)
	}
	if vs := invariant.CheckNoLostAcked(leader.ExportState(), standby.ExportState()); len(vs) != 0 {
		t.Fatalf("audit red after a clean resync: %v", vs)
	}
}
