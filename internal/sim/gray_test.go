package sim

import (
	"testing"
	"time"

	"gpunion/internal/chaos"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/invariant"
	"gpunion/internal/monitor"
	"gpunion/internal/obs"
	"gpunion/internal/workload"
)

// countTrace tallies flight-recorder entries of one kind.
func countTrace(events []obs.Event, kind string) int {
	n := 0
	for _, ev := range events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestChaosGrayDegrade: nodes degrade without dying — XID and thermal
// events stream in on heartbeats — under churn and a coordinator
// crash. The health fold must stay stream-consistent (including across
// crash recovery), the scheduler must stop placing on unhealthy nodes,
// and predictive checkpoint-then-migrate must drain them.
func TestChaosGrayDegrade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosGrayDegrade(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindGrayDegrade] == 0 {
		t.Errorf("no gray-degradation window opened: %v", res.Report.Executed)
	}
	if res.Recoveries == 0 {
		t.Error("no coordinator crash exercised health-state recovery")
	}
	degraded := countTrace(res.Trace, obs.KindHealthDegraded)
	predictive := countTrace(res.Trace, obs.KindPredictiveMigrate)
	if degraded == 0 {
		t.Error("gray windows opened but no node ever crossed the unhealthy threshold")
	}
	if predictive == 0 {
		t.Error("nodes crossed the unhealthy threshold but no predictive migration ran")
	}
	t.Logf("grayWindows=%d degraded=%d predictiveMigrations=%d",
		res.Report.Executed[chaos.KindGrayDegrade], degraded, predictive)
}

// TestChaosPartialLoss: gray degradation under a lossy control path —
// every other heartbeat dropped — on a replicated pair with a leader
// kill. Health events must accumulate and ride the next surviving beat
// without double-ingestion, the half-dead path must not get nodes
// declared lost, and the folded health state must survive standby
// promotion.
func TestChaosPartialLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL shipping")
	}
	res, err := RunChaosPartialLoss(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindPartialLoss] == 0 {
		t.Errorf("no partial-loss window opened: %v", res.Report.Executed)
	}
	if res.Failovers == 0 {
		t.Error("no leader handoff exercised health-state promotion")
	}
	if countTrace(res.Trace, obs.KindHealthDegraded) == 0 {
		t.Error("gray windows opened but no node ever crossed the unhealthy threshold")
	}
}

// TestChaosCkptReadRot: checkpoint blobs stored intact but rotting on
// read during fault windows, while gray degradation forces predictive
// migrations straight through the damage. The store's CRC frames must
// catch every rotted copy and restores must fall back to an intact
// generation.
func TestChaosCkptReadRot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full campus day with WAL fsyncs")
	}
	res, err := RunChaosCkptReadRot(42)
	requireClean(t, res, err)
	if res.Report.Executed[chaos.KindCkptReadRot] == 0 {
		t.Errorf("no read-rot window opened: %v", res.Report.Executed)
	}
	if res.CkptReadFaultsInjected == 0 {
		t.Error("rot windows opened but no read was actually damaged")
	}
	if res.CkptCorruptionsDetected == 0 {
		t.Error("reads were damaged but the CRC detector never fired")
	}
	t.Logf("rotWindows=%d rottedReads=%d detected=%d",
		res.Report.Executed[chaos.KindCkptReadRot],
		res.CkptReadFaultsInjected, res.CkptCorruptionsDetected)
}

// TestGrayPredictiveDrain scripts the tentpole end to end: a healthy
// campus runs training jobs, one node is driven below the unhealthy
// threshold through injected health events, and the coordinator must
// checkpoint-then-migrate its jobs off before anything fails — zero
// lost work — while the scheduler stops placing there. Once the events
// stop, the decay sweep must fold the node back into service.
func TestGrayPredictiveDrain(t *testing.T) {
	campus, err := NewCampus(PaperCampus(), CampusConfig{WithHealthSources: true})
	if err != nil {
		t.Fatal(err)
	}
	defer campus.Stop()
	for i := 0; i < 8; i++ {
		if _, err := campus.Coord.SubmitJob(
			TrainingJobSubmission("user", workload.SmallCNN, 5*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the fleet settle and cut at least one checkpoint generation.
	campus.Run(20 * time.Minute)

	store := campus.Coord.DB()
	victim := ""
	var victimJobs []db.JobRecord
	for _, d := range campus.Defs {
		var running []db.JobRecord
		for _, j := range store.JobsOnNode(d.ID) {
			if j.State == db.JobRunning {
				running = append(running, j)
			}
		}
		if len(running) > 0 {
			victim, victimJobs = d.ID, running
			break
		}
	}
	if victim == "" {
		t.Fatal("no node hosts a running job after warm-up")
	}

	// A fatal XID is the strongest signal: one event folds the node
	// straight through the unhealthy threshold on its next beat.
	campus.Health[victim].Inject(gpu.HealthEvent{
		Kind: gpu.HealthXIDFatal, Severity: gpu.SeverityCritical,
		DeviceID: "GPU-0", XID: 79, At: campus.Clock.Now(),
		Message: "test: GPU has fallen off the bus",
	})
	// Two beats: one to carry the event, one of margin for the drain's
	// relaunches to land (transfers are instant without the LAN model).
	campus.Run(2 * time.Minute)

	n, err := store.GetNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n.HealthScore() >= monitor.UnhealthyBelow {
		t.Fatalf("victim %s health %v, still at or above the unhealthy threshold %v",
			victim, n.HealthScore(), monitor.UnhealthyBelow)
	}

	// Give retries a few sweeps, then the drain must be complete.
	campus.Run(10 * time.Minute)
	for _, was := range victimJobs {
		cur, err := store.GetJob(was.ID)
		if err != nil {
			t.Fatalf("job %s vanished during the drain", was.ID)
		}
		if cur.State == db.JobFailed {
			t.Errorf("job %s failed during a predictive drain — the whole point is moving it before anything fails", was.ID)
		}
		if cur.State == db.JobRunning && cur.NodeID == victim {
			t.Errorf("job %s still runs on the unhealthy node %s", was.ID, victim)
		}
		if cur.State == db.JobRunning && cur.Migrations == 0 {
			t.Errorf("job %s runs on %s without a recorded migration", was.ID, cur.NodeID)
		}
		// Zero lost work: the drain checkpointed before killing, so a
		// restorable generation must exist for every moved job.
		if cur.State == db.JobRunning {
			if _, err := campus.Ckpts.Latest(was.ID); err != nil {
				t.Errorf("job %s migrated without a restorable checkpoint: %v", was.ID, err)
			}
		}
	}
	// The scheduler must not have placed anything new on the victim
	// while it sat below the threshold.
	if vs := invariant.CheckNoPlacementOnUnhealthy(store); len(vs) != 0 {
		t.Errorf("placements landed on unhealthy nodes: %v", vs)
	}

	// Recovery: no further events, so the decay sweep folds the score
	// back up; within half an hour the node is schedulable again.
	campus.Run(30 * time.Minute)
	n, err = store.GetNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n.HealthScore() < monitor.UnhealthyBelow {
		t.Errorf("victim %s health %v never decayed back above %v after the fault cleared",
			victim, n.HealthScore(), monitor.UnhealthyBelow)
	}
}

// TestGraySabotageHealthDeltas: a health fold whose persisted score is
// not the deterministic refold of its carried events must trip
// health-score-consistent; an honest fold must not.
func TestGraySabotageHealthDeltas(t *testing.T) {
	now := Epoch
	params := monitor.DefaultHealthParams()
	events := []gpu.HealthEvent{{Kind: gpu.HealthThermal, Severity: gpu.SeverityCritical}}

	honest := func(s db.Store) {
		s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive, HealthAt: now})
		s.RecordHealth("ws-1", now.Add(time.Minute), events, func(prev float64, prevAt time.Time) float64 {
			return monitor.FoldHealth(prev, prevAt, now.Add(time.Minute), events, params)
		})
	}
	lying := func(s db.Store) {
		s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive, HealthAt: now})
		s.RecordHealth("ws-1", now.Add(time.Minute), events, func(prev float64, prevAt time.Time) float64 {
			return 0.99 // double-count / dropped-event stand-in: not the fold
		})
	}

	for name, tc := range map[string]struct {
		wreck func(db.Store)
		dirty bool
	}{"honest-fold": {honest, false}, "forged-score": {lying, true}} {
		t.Run(name, func(t *testing.T) {
			s := db.New(0)
			audit, cancel := invariant.NewHealthAudit(s)
			defer cancel()
			tc.wreck(s)
			vs := audit.Check(s)
			found := false
			for _, v := range vs {
				if v.Rule == "health-score-consistent" {
					found = true
				}
			}
			if found != tc.dirty {
				t.Fatalf("dirty=%v but violations=%v", tc.dirty, vs)
			}
		})
	}
}

// TestGraySabotagePlacementOnUnhealthy: a running job placed after its
// node's health dropped below the threshold must trip
// no-placement-on-unhealthy; one placed before the drop must not.
func TestGraySabotagePlacementOnUnhealthy(t *testing.T) {
	s := db.New(0)
	droppedAt := Epoch.Add(time.Hour)
	s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive,
		Health: 0.2, HealthAt: droppedAt})
	_ = s.InsertJob(db.JobRecord{ID: "old", State: db.JobRunning, NodeID: "ws-1",
		ImageName: "img", PlacedAt: droppedAt.Add(-time.Minute)})
	if vs := invariant.CheckNoPlacementOnUnhealthy(s); len(vs) != 0 {
		t.Fatalf("pre-drop placement flagged: %v", vs)
	}
	_ = s.InsertJob(db.JobRecord{ID: "new", State: db.JobRunning, NodeID: "ws-1",
		ImageName: "img", PlacedAt: droppedAt.Add(time.Minute)})
	vs := invariant.CheckNoPlacementOnUnhealthy(s)
	if len(vs) != 1 || vs[0].Rule != "no-placement-on-unhealthy" {
		t.Fatalf("post-drop placement not flagged: %v", vs)
	}
}

// TestGraySabotageDegradedDrained: a job left running on a long-
// unhealthy node while a feasible free device exists elsewhere must
// trip degraded-node-drained — and must not when there is no spare
// capacity, or when the crossing is too recent.
func TestGraySabotageDegradedDrained(t *testing.T) {
	now := Epoch.Add(2 * time.Hour)
	since := map[string]time.Time{"ws-1": Epoch}
	grace := 10 * time.Minute
	build := func(spareFree bool) db.Store {
		s := db.New(0)
		s.UpsertNode(db.NodeRecord{ID: "ws-1", Status: db.NodeActive,
			Health: 0.2, HealthAt: now})
		s.UpsertNode(db.NodeRecord{ID: "ws-2", Status: db.NodeActive, GPUs: []db.GPUInfo{{
			DeviceID: "gpu0", MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6,
			Allocated: !spareFree,
		}}})
		_ = s.InsertJob(db.JobRecord{ID: "stuck", State: db.JobRunning, NodeID: "ws-1",
			ImageName: "img", GPUMemMiB: 8192, CapabilityMajor: 7, PlacedAt: Epoch})
		return s
	}

	vs := invariant.CheckDegradedDrained(build(true), since, now, grace)
	if len(vs) != 1 || vs[0].Rule != "degraded-node-drained" {
		t.Fatalf("undrained job not flagged: %v", vs)
	}
	if vs := invariant.CheckDegradedDrained(build(false), since, now, grace); len(vs) != 0 {
		t.Fatalf("no spare capacity, yet flagged: %v", vs)
	}
	fresh := map[string]time.Time{"ws-1": now.Add(-time.Minute)}
	if vs := invariant.CheckDegradedDrained(build(true), fresh, now, grace); len(vs) != 0 {
		t.Fatalf("crossing inside the grace, yet flagged: %v", vs)
	}
}
