// Package sim is GPUnion's campus discrete-event simulation: the
// substrate that reproduces the paper's evaluation (§4) without a
// physical testbed. It assembles the *real* platform components —
// coordinator, provider agents, container runtime, checkpoint store,
// LAN model — on a simulated clock, drives them with stochastic demand
// and provider-behaviour processes, and measures the same quantities the
// paper reports.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"gpunion/internal/agent"
	"gpunion/internal/api"
	"gpunion/internal/checkpoint"
	"gpunion/internal/container"
	"gpunion/internal/core"
	"gpunion/internal/db"
	"gpunion/internal/eventbus"
	"gpunion/internal/gpu"
	"gpunion/internal/netsim"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
	"gpunion/internal/storage"
	"gpunion/internal/workload"
)

// Epoch is the simulation start time (beginning of a semester).
var Epoch = time.Date(2025, 9, 1, 0, 0, 0, 0, time.UTC)

// NodeDef describes one campus server.
type NodeDef struct {
	// ID names the node.
	ID string
	// GPUs lists the installed devices.
	GPUs []gpu.Spec
	// Lab is the owning research group (demand attribution).
	Lab string
}

// PaperCampus returns the paper's deployment: 8 workstations with one
// RTX 3090 each, one server with 8×4090, one with 2×A100, one with
// 4×A6000 (the CPU-only coordinator is implicit).
func PaperCampus() []NodeDef {
	var defs []NodeDef
	for i := 1; i <= 8; i++ {
		defs = append(defs, NodeDef{
			ID:   fmt.Sprintf("ws-%d", i),
			GPUs: []gpu.Spec{gpu.RTX3090},
			Lab:  fmt.Sprintf("lab-%d", i),
		})
	}
	eight := make([]gpu.Spec, 8)
	for i := range eight {
		eight[i] = gpu.RTX4090
	}
	defs = append(defs, NodeDef{ID: "srv-4090", GPUs: eight, Lab: "lab-9"})
	defs = append(defs, NodeDef{ID: "srv-a100", GPUs: []gpu.Spec{gpu.A100, gpu.A100}, Lab: "lab-10"})
	defs = append(defs, NodeDef{ID: "srv-a6000", GPUs: []gpu.Spec{gpu.A6000, gpu.A6000, gpu.A6000, gpu.A6000}, Lab: "lab-11"})
	return defs
}

// TotalGPUs counts devices across node definitions.
func TotalGPUs(defs []NodeDef) int {
	n := 0
	for _, d := range defs {
		n += len(d.GPUs)
	}
	return n
}

// Campus is an assembled in-process GPUnion deployment on a simulated
// clock.
type Campus struct {
	Clock  *simclock.Sim
	Coord  *core.Coordinator
	Agents map[string]*agent.Agent
	Ckpts  *checkpoint.Store
	Net    *netsim.Network
	Bus    *eventbus.Bus
	Defs   []NodeDef
	// Health holds each agent's injectable health source when the
	// assembly was built WithHealthSources (gray-failure scripting).
	Health map[string]*gpu.FakeHealthSource

	hbInterval time.Duration
}

// CampusConfig tunes the assembly.
type CampusConfig struct {
	// HeartbeatInterval between agent reports (default 1 min).
	HeartbeatInterval time.Duration
	// ProgressTick is the agent work-advance granularity (default 30 s).
	ProgressTick time.Duration
	// WithNetwork attaches the LAN model (needed by the traffic study).
	WithNetwork bool
	// ForceFullCheckpoints disables incremental captures on every agent
	// (the traffic ablation's "full" arm).
	ForceFullCheckpoints bool
	// TrackCheckpointTraffic replays each checkpoint save as a LAN
	// transfer from the capturing node to the coordinator's store, so
	// the accountant sees backup traffic. Requires WithNetwork.
	TrackCheckpointTraffic bool
	// Strategy selects the scheduling strategy (nil = round-robin).
	Strategy scheduler.Strategy
	// SchedulerBatchSize caps one scheduling cycle's batch (0 = the
	// coordinator default).
	SchedulerBatchSize int
	// WithHealthSources wires an injectable gpu.FakeHealthSource into
	// every agent, exposed via Campus.Health — the seam gray-failure
	// scenarios push XID/thermal/slowdown events through.
	WithHealthSources bool
}

// NewCampus builds a deployment from node definitions. All agents share
// one LAN-accessible checkpoint store, mirroring the paper's
// "LAN-accessible file system" checkpoint target.
func NewCampus(defs []NodeDef, cfg CampusConfig) (*Campus, error) {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Minute
	}
	if cfg.ProgressTick <= 0 {
		cfg.ProgressTick = 30 * time.Second
	}
	clock := simclock.NewSim(Epoch)
	ckpts := checkpoint.NewStore(storage.NewMemStore(0))
	bus := eventbus.New(4096)

	var net *netsim.Network
	storageNode := ""
	if cfg.WithNetwork {
		net = netsim.New(10 * netsim.Gbps)
		net.AddNode(netsim.NodeLink{Name: "coordinator", Access: 10 * netsim.Gbps, Latency: 150 * time.Microsecond})
		for _, d := range defs {
			net.AddNode(netsim.NodeLink{Name: d.ID, Access: netsim.Gbps, Latency: 250 * time.Microsecond})
		}
		storageNode = "coordinator"
	}

	coord, err := core.New(core.Config{
		HeartbeatInterval: cfg.HeartbeatInterval,
		Strategy:          cfg.Strategy,
		BatchSize:         cfg.SchedulerBatchSize,
		Net:               net,
		StorageNode:       storageNode,
	}, clock, db.New(0), ckpts, bus)
	if err != nil {
		return nil, err
	}

	c := &Campus{
		Clock: clock, Coord: coord, Agents: make(map[string]*agent.Agent),
		Ckpts: ckpts, Net: net, Bus: bus, Defs: defs,
		hbInterval: cfg.HeartbeatInterval,
	}
	if cfg.WithHealthSources {
		c.Health = make(map[string]*gpu.FakeHealthSource, len(defs))
	}
	if cfg.TrackCheckpointTraffic && net != nil {
		bus.SubscribeFunc(func(ev eventbus.Event) {
			bytes, _ := ev.Detail["bytes"].(int64)
			if bytes <= 0 || ev.Node == "" {
				return
			}
			_, _ = net.Transfer(ev.Node, "coordinator", bytes, netsim.TrafficCheckpoint, ev.Time)
		}, eventbus.JobCheckpoint)
	}

	for _, d := range defs {
		rt := container.NewRuntime(container.DefaultImages(), gpu.NewMixedInventory(d.GPUs...), 0, 0)
		acfg := agent.Config{
			MachineID: d.ID, Kernel: "5.15",
			ProgressTick:         cfg.ProgressTick,
			ForceFullCheckpoints: cfg.ForceFullCheckpoints,
		}
		if cfg.WithHealthSources {
			src := gpu.NewFakeHealthSource()
			c.Health[d.ID] = src
			acfg.Health = src
		}
		ag := agent.New(acfg, clock, rt, ckpts, bus, coord)
		resp, err := coord.Register(ag.RegisterRequest("inproc://"+d.ID, 1<<40), core.LocalAgent{A: ag})
		if err != nil {
			return nil, err
		}
		ag.SetToken(resp.Token)
		c.Agents[d.ID] = ag
		c.heartbeatLoop(ag)
	}
	return c, nil
}

// localAgentHandle adapts an in-process agent for the coordinator.
func localAgentHandle(ag *agent.Agent) core.AgentHandle {
	return core.LocalAgent{A: ag}
}

// heartbeatLoop arms a recurring heartbeat for an agent on the sim
// clock. Departed agents skip beats (silence is the emergency signal);
// expired credentials trigger re-registration, like the real daemon.
func (c *Campus) heartbeatLoop(ag *agent.Agent) {
	var loop func()
	loop = func() {
		if !ag.Departed() {
			resp, err := c.Coord.Heartbeat(ag.HeartbeatRequest())
			if err == nil && resp.Reregister {
				if r, rerr := c.Coord.Register(
					ag.RegisterRequest("inproc://"+ag.MachineID(), 1<<40),
					core.LocalAgent{A: ag}); rerr == nil {
					ag.SetToken(r.Token)
				}
			}
		}
		c.Clock.AfterFunc(c.hbInterval, loop)
	}
	c.Clock.AfterFunc(c.hbInterval, loop)
}

// Run advances the simulation by d.
func (c *Campus) Run(d time.Duration) {
	c.Clock.Advance(d)
}

// Stop cancels background timers.
func (c *Campus) Stop() {
	c.Coord.Stop()
	for _, ag := range c.Agents {
		ag.Stop()
	}
}

// BusyGPUTime sums allocation-episode durations across all jobs up to
// now — the numerator of campus-wide utilization.
func (c *Campus) BusyGPUTime(now time.Time) time.Duration {
	var busy time.Duration
	for _, a := range c.Coord.DB().Allocations() {
		end := a.End
		if end.IsZero() {
			end = now
		}
		if end.After(a.Start) {
			busy += end.Sub(a.Start)
		}
	}
	return busy
}

// Utilization returns campus-wide GPU utilization over [Epoch, now]:
// busy device-time divided by total device-time.
func (c *Campus) Utilization(now time.Time) float64 {
	total := time.Duration(TotalGPUs(c.Defs)) * now.Sub(Epoch)
	if total <= 0 {
		return 0
	}
	u := float64(c.BusyGPUTime(now)) / float64(total)
	if u > 1 {
		u = 1
	}
	return u
}

// Demand models stochastic job arrivals with a diurnal weekday pattern.
type Demand struct {
	rng *rand.Rand
}

// NewDemand creates a seeded demand generator.
func NewDemand(seed int64) *Demand {
	return &Demand{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the generator's randomness for scenario scripting.
func (d *Demand) Rand() *rand.Rand { return d.rng }

// diurnalFactor scales arrival intensity by hour-of-week: working hours
// are busiest, nights quiet, weekends light — the temporal
// underutilization pattern the paper's introduction describes.
func diurnalFactor(t time.Time) float64 {
	h := t.Hour()
	switch wd := t.Weekday(); {
	case wd == time.Saturday || wd == time.Sunday:
		return 0.35
	case h >= 9 && h < 19:
		return 1.0
	case h >= 19 && h < 24:
		return 0.6
	default:
		return 0.2
	}
}

// PoissonArrivals schedules fn at Poisson arrival times with base rate
// ratePerDay (modulated by the diurnal factor) over [start, start+span],
// returning the number of arrivals scheduled.
func (d *Demand) PoissonArrivals(clock *simclock.Sim, start time.Time, span time.Duration, ratePerDay float64, fn func(at time.Time)) int {
	return d.PoissonArrivalsMod(clock, start, span, ratePerDay, diurnalFactor, fn)
}

// PoissonArrivalsMod is PoissonArrivals with a custom intensity
// modulation (0..1). Opportunistic background work uses the inverted
// pattern: it fills nights and weekends, when interactive users are
// away (§4: "automated allocation of opportunistic workloads during
// idle periods").
func (d *Demand) PoissonArrivalsMod(clock *simclock.Sim, start time.Time, span time.Duration, ratePerDay float64, mod func(time.Time) float64, fn func(at time.Time)) int {
	n := 0
	t := start
	end := start.Add(span)
	for {
		// Thinning: draw from the max rate, accept by the modulation.
		maxRate := ratePerDay / (24 * 3600) // events per second
		if maxRate <= 0 {
			return n
		}
		dt := time.Duration(d.rng.ExpFloat64() / maxRate * float64(time.Second))
		t = t.Add(dt)
		if !t.Before(end) {
			return n
		}
		if d.rng.Float64() > mod(t) {
			continue
		}
		at := t
		delay := at.Sub(clock.Now())
		if delay < 0 {
			delay = 0
		}
		clock.AfterFunc(delay, func() { fn(at) })
		n++
	}
}

// OffPeakFactor is the inverse demand pattern: strong at night and on
// weekends, weak during working hours.
func OffPeakFactor(t time.Time) float64 {
	h := t.Hour()
	switch wd := t.Weekday(); {
	case wd == time.Saturday || wd == time.Sunday:
		return 1.0
	case h >= 9 && h < 19:
		return 0.25
	case h >= 19 && h < 24:
		return 0.7
	default:
		return 1.0
	}
}

// TrainingJobSubmission builds a batch submission for a corpus job.
func TrainingJobSubmission(user string, spec workload.TrainingSpec, ckptInterval time.Duration) api.SubmitJobRequest {
	return api.SubmitJobRequest{
		User: user, Kind: "batch", ImageName: "pytorch/pytorch:2.3-cuda12",
		GPUMemMiB:             spec.GPUMemMiB,
		CapabilityMajor:       spec.MinCapability.Major,
		CapabilityMinor:       spec.MinCapability.Minor,
		CheckpointIntervalSec: int(ckptInterval / time.Second),
		Training:              &spec,
	}
}

// SessionSubmission builds an interactive-session submission.
// Interactive work is time-sensitive, so it carries elevated priority
// (§3.2: "assignment based on priority for time-sensitive workloads").
func SessionSubmission(user string, s workload.Session) api.SubmitJobRequest {
	return api.SubmitJobRequest{
		User: user, Kind: "interactive", ImageName: "gpunion/jupyter-dl:latest",
		Priority:       10,
		GPUMemMiB:      s.GPUMemMiB,
		SessionSeconds: int(s.Duration / time.Second),
	}
}
