package sim

import (
	"time"

	"gpunion/internal/eventbus"
	"gpunion/internal/netsim"
	"gpunion/internal/workload"
)

// TrafficConfig parameterises the network-traffic analysis (§4:
// incremental checkpoint backup consumes "less than 2% of available
// campus bandwidth during peak operation periods").
type TrafficConfig struct {
	// Hours is the observation window (default 24).
	Hours int
	// Jobs is the concurrent training population (default 20).
	Jobs int
	// CheckpointInterval is the backup cadence (default 10 min).
	CheckpointInterval time.Duration
	// ForceFull disables incremental captures (the ablation arm).
	ForceFull bool
	// Seed drives the workload draw.
	Seed int64
}

// TrafficResult reports backup-traffic pressure on the campus LAN.
type TrafficResult struct {
	// TotalCheckpointBytes is everything shipped to backup storage.
	TotalCheckpointBytes int64
	// PeakUtilization is the worst five-minute share of the campus
	// backbone consumed by checkpoint traffic (the paper's "< 2% during
	// peak operation periods").
	PeakUtilization float64
	// MeanUtilization is the average share over the whole window.
	MeanUtilization float64
	// Checkpoints is the number of captures taken.
	Checkpoints int
	// BackboneGbps echoes the modelled backbone capacity.
	BackboneGbps float64
}

// RunTraffic runs a loaded campus and accounts every checkpoint save as
// a LAN transfer to the coordinator's backup store.
func RunTraffic(cfg TrafficConfig) (TrafficResult, error) {
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 20
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 10 * time.Minute
	}
	span := time.Duration(cfg.Hours) * time.Hour

	campus, err := NewCampus(PaperCampus(), CampusConfig{
		HeartbeatInterval:      time.Minute,
		ProgressTick:           time.Minute,
		WithNetwork:            true,
		ForceFullCheckpoints:   cfg.ForceFull,
		TrackCheckpointTraffic: true,
	})
	if err != nil {
		return TrafficResult{}, err
	}
	defer campus.Stop()

	ckptCount := 0
	campus.Bus.SubscribeFunc(func(eventbus.Event) { ckptCount++ }, eventbus.JobCheckpoint)

	// A steady training population with multi-hour jobs, submitted
	// staggered over the first two hours so checkpoint cadences
	// desynchronize — as they would with real users. Placement
	// constraints keep everything on 24 GiB devices.
	g := workload.NewGenerator(cfg.Seed)
	stagger := 2 * time.Hour / time.Duration(cfg.Jobs)
	submitted := 0
	for _, j := range g.TrainingCorpus(cfg.Jobs * 2) {
		if submitted >= cfg.Jobs {
			break
		}
		spec := j.Spec
		if spec.GPUMemMiB > 20000 {
			spec = workload.SmallTransformer
			spec.TotalSteps *= 4
		}
		spec.TotalSteps *= 4
		at := time.Duration(submitted) * stagger
		submitted++
		campus.Clock.AfterFunc(at, func() {
			_, _ = campus.Coord.SubmitJob(TrainingJobSubmission("traffic", spec, cfg.CheckpointInterval))
		})
	}

	campus.Run(span)

	acct := campus.Net.Accountant()
	res := TrafficResult{
		TotalCheckpointBytes: acct.TotalBytes(netsim.TrafficCheckpoint),
		PeakUtilization: acct.PeakWindowUtilization(netsim.TrafficCheckpoint,
			campus.Net.Backbone(), 5*time.Minute, time.Minute),
		MeanUtilization: acct.WindowUtilization(netsim.TrafficCheckpoint,
			campus.Net.Backbone(), Epoch, Epoch.Add(span)),
		BackboneGbps: float64(campus.Net.Backbone()) / 1e9,
		Checkpoints:  ckptCount,
	}
	return res, nil
}
