package sim

import (
	"fmt"
	"time"

	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/workload"
)

// ImpactConfig parameterises the training-impact study (§4 "Training
// Impact": jobs experiencing 2–4 interruptions showed only 3–7%
// increases in total training time; memory-intensive models were more
// sensitive because their checkpoints take longer to create).
type ImpactConfig struct {
	// MaxInterruptions sweeps 0..MaxInterruptions (default 6).
	MaxInterruptions int
	// CheckpointInterval is the periodic ALC cadence (default 10 min).
	CheckpointInterval time.Duration
	// Seed drives interruption jitter.
	Seed int64
}

// ImpactRow is one (job class, interruption count) measurement.
type ImpactRow struct {
	Class           workload.Class
	MemoryIntensive bool
	Interruptions   int
	// BaselineTime is the uninterrupted completion time.
	BaselineTime time.Duration
	// InterruptedTime is the completion time with the interruptions.
	InterruptedTime time.Duration
}

// IncreasePct is the relative training-time inflation in percent.
func (r ImpactRow) IncreasePct() float64 {
	if r.BaselineTime <= 0 {
		return 0
	}
	return 100 * float64(r.InterruptedTime-r.BaselineTime) / float64(r.BaselineTime)
}

// impactSubjects are the studied job profiles: a regular CNN, a regular
// transformer, and a memory-intensive transformer (large state, long
// checkpoint creation).
func impactSubjects() []workload.TrainingSpec {
	cnn := workload.SmallCNN
	cnn.TotalSteps *= 8 // ≈ 9 h on a 3090

	tr := workload.SmallTransformer
	tr.TotalSteps *= 3 // ≈ 10 h

	heavy := workload.SmallTransformer
	heavy.TotalSteps *= 3
	heavy.StateBytes = 12_000_000_000 // memory-intensive: 12 GB state
	heavy.GPUMemMiB = 20000
	return []workload.TrainingSpec{cnn, tr, heavy}
}

// RunTrainingImpact measures completion-time inflation as a function of
// interruption count, one platform run per (subject, count) cell.
func RunTrainingImpact(cfg ImpactConfig) ([]ImpactRow, error) {
	if cfg.MaxInterruptions <= 0 {
		cfg.MaxInterruptions = 6
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 10 * time.Minute
	}
	var rows []ImpactRow
	for _, spec := range impactSubjects() {
		baseline, err := runImpactCell(spec, 0, cfg)
		if err != nil {
			return nil, err
		}
		for k := 0; k <= cfg.MaxInterruptions; k++ {
			t, err := runImpactCell(spec, k, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ImpactRow{
				Class:           spec.Class,
				MemoryIntensive: spec.MemoryIntensive(),
				Interruptions:   k,
				BaselineTime:    baseline,
				InterruptedTime: t,
			})
		}
	}
	return rows, nil
}

// runImpactCell runs one job to completion on a two-node campus,
// emergency-interrupting its host k times at evenly spread points, and
// returns the completion time.
func runImpactCell(spec workload.TrainingSpec, k int, cfg ImpactConfig) (time.Duration, error) {
	campus, err := NewCampus([]NodeDef{
		{ID: "node-a", GPUs: repeatSpec(gpu.RTX3090, 1), Lab: "a"},
		{ID: "node-b", GPUs: repeatSpec(gpu.RTX3090, 1), Lab: "b"},
	}, CampusConfig{
		HeartbeatInterval: 30 * time.Second,
		ProgressTick:      15 * time.Second,
		WithNetwork:       true,
	})
	if err != nil {
		return 0, err
	}
	defer campus.Stop()

	jobID, err := campus.Coord.SubmitJob(TrainingJobSubmission("impact", spec, cfg.CheckpointInterval))
	if err != nil {
		return 0, err
	}

	baseline := spec.RunTime(gpu.RTX3090)
	// Interruptions spread across the expected run: at i/(k+1) of it.
	for i := 1; i <= k; i++ {
		at := time.Duration(float64(baseline) * float64(i) / float64(k+1))
		campus.Clock.AfterFunc(at, func() {
			st, err := campus.Coord.JobStatus(jobID)
			if err != nil || st.State != db.JobRunning {
				return
			}
			host := campus.Agents[st.NodeID]
			if host == nil || host.Departed() {
				return
			}
			host.Depart(api.DepartEmergency, 0)
			// The provider returns half an hour later.
			campus.Clock.AfterFunc(30*time.Minute, func() {
				host.Return()
				if resp, rerr := campus.Coord.Register(
					host.RegisterRequest("inproc://"+st.NodeID, 1<<40),
					localAgentHandle(host)); rerr == nil {
					host.SetToken(resp.Token)
				}
			})
		})
	}

	// Run until completion (generous horizon: 4× the baseline).
	horizon := Epoch.Add(4*baseline + 24*time.Hour)
	for campus.Clock.Now().Before(horizon) {
		campus.Run(time.Hour)
		st, err := campus.Coord.JobStatus(jobID)
		if err != nil {
			return 0, err
		}
		if st.State == db.JobCompleted {
			return st.Finished.Sub(st.Submitted), nil
		}
	}
	return 0, fmt.Errorf("sim: job %s did not complete within the horizon (k=%d)", jobID, k)
}
