package sim

import (
	"time"

	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/netsim"
	"gpunion/internal/scheduler"
	"gpunion/internal/workload"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out: the checkpoint-interval trade-off behind §3.5's
// "checkpoint frequency optimization", and the scheduling-strategy
// choice behind §3.2's "multiple allocation strategies".

// IntervalPoint is one checkpoint-interval sweep measurement.
type IntervalPoint struct {
	Interval time.Duration
	// MeanEmergencyLoss is compute redone per emergency displacement.
	MeanEmergencyLoss time.Duration
	// CheckpointBytes is total backup traffic over the window.
	CheckpointBytes int64
	// PeakUtilization is the backup traffic's worst five-minute share
	// of the backbone.
	PeakUtilization float64
}

// RunCheckpointIntervalSweep quantifies the §3.5 trade-off: shorter
// intervals bound emergency work loss tighter but ship more backup
// traffic. Each point runs the Fig. 3 migration experiment (for loss)
// and the traffic experiment (for bandwidth) at the same cadence.
func RunCheckpointIntervalSweep(intervals []time.Duration, seed int64) ([]IntervalPoint, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{5 * time.Minute, 10 * time.Minute, 30 * time.Minute}
	}
	var out []IntervalPoint
	for _, iv := range intervals {
		fig3, err := RunFig3(Fig3Config{Seed: seed, CheckpointInterval: iv,
			// All-emergency interruptions give the loss statistic the
			// most samples.
			ScenarioWeights: [3]float64{0, 1, 0}})
		if err != nil {
			return nil, err
		}
		traffic, err := RunTraffic(TrafficConfig{Hours: 8, Jobs: 20, Seed: seed,
			CheckpointInterval: iv})
		if err != nil {
			return nil, err
		}
		out = append(out, IntervalPoint{
			Interval:          iv,
			MeanEmergencyLoss: fig3.Emergency.MeanWorkLost,
			CheckpointBytes:   traffic.TotalCheckpointBytes,
			PeakUtilization:   traffic.PeakUtilization,
		})
	}
	return out, nil
}

// StrategyResult compares one scheduling strategy on a heterogeneous
// campus under a mixed workload.
type StrategyResult struct {
	Strategy string
	// Utilization is campus GPU utilization over the window.
	Utilization float64
	// LargeJobsPlaced counts big-memory jobs that found an A100;
	// strategies that squander large devices on small jobs strand them.
	LargeJobsPlaced int
	// LargeJobsStranded counts big-memory jobs still waiting at the end.
	LargeJobsStranded int
	// MeanLargeJobWait is the average queueing delay of big-memory
	// jobs: the cost of letting small work occupy the A100s.
	MeanLargeJobWait time.Duration
}

// RunStrategyAblation runs the same workload stream under each
// scheduling strategy. The stream mixes many small jobs with a few
// 40 GiB jobs that only fit the A100s: best-fit should keep the big
// devices free for them, while round-robin and least-loaded may strand
// them behind small work.
func RunStrategyAblation(seed int64) ([]StrategyResult, error) {
	mkStrategy := map[string]func() scheduler.Strategy{
		"round-robin":  func() scheduler.Strategy { return &scheduler.RoundRobin{} },
		"best-fit":     func() scheduler.Strategy { return scheduler.BestFit{} },
		"least-loaded": func() scheduler.Strategy { return scheduler.LeastLoaded{} },
	}
	defs := []NodeDef{
		{ID: "ws-1", GPUs: repeatSpec(gpu.RTX3090, 2), Lab: "a"},
		{ID: "ws-2", GPUs: repeatSpec(gpu.RTX3090, 2), Lab: "b"},
		{ID: "big", GPUs: repeatSpec(gpu.A100, 2), Lab: "c"},
	}
	span := 24 * time.Hour

	var out []StrategyResult
	for _, name := range []string{"round-robin", "best-fit", "least-loaded"} {
		campus, err := NewCampus(defs, CampusConfig{
			HeartbeatInterval: time.Minute,
			ProgressTick:      time.Minute,
			Strategy:          mkStrategy[name](),
		})
		if err != nil {
			return nil, err
		}

		demand := NewDemand(seed)
		rng := demand.Rand()
		var largeIDs []string
		// Small jobs arrive steadily; a large job every ~4 hours.
		demand.PoissonArrivalsMod(campus.Clock, Epoch, span, 30,
			func(time.Time) float64 { return 1 }, func(time.Time) {
				spec := jitterSpec(rng, workload.SmallCNN)
				_, _ = campus.Coord.SubmitJob(TrainingJobSubmission("small", spec, 10*time.Minute))
			})
		demand.PoissonArrivalsMod(campus.Clock, Epoch, span, 6,
			func(time.Time) float64 { return 1 }, func(time.Time) {
				spec := workload.LargeTransformer // 40 GiB: A100 only
				spec.TotalSteps /= 20             // hours-scale
				id, err := campus.Coord.SubmitJob(TrainingJobSubmission("large", spec, 10*time.Minute))
				if err == nil {
					largeIDs = append(largeIDs, id)
				}
			})

		campus.Run(span)

		res := StrategyResult{Strategy: name,
			Utilization: campus.Utilization(campus.Clock.Now())}
		var waits time.Duration
		for _, id := range largeIDs {
			st, err := campus.Coord.JobStatus(id)
			if err != nil {
				continue
			}
			if st.State == db.JobPending {
				res.LargeJobsStranded++
				waits += campus.Clock.Now().Sub(st.Submitted)
			} else {
				res.LargeJobsPlaced++
				waits += st.Started.Sub(st.Submitted)
			}
		}
		if n := res.LargeJobsPlaced + res.LargeJobsStranded; n > 0 {
			res.MeanLargeJobWait = waits / time.Duration(n)
		}
		campus.Stop()
		out = append(out, res)
	}
	return out, nil
}

// CheckpointTrafficAt reports the accountant's checkpoint share for an
// arbitrary window; exposed for the interval-sweep tests.
func CheckpointTrafficAt(net *netsim.Network, from, to time.Time) float64 {
	return net.Accountant().WindowUtilization(netsim.TrafficCheckpoint, net.Backbone(), from, to)
}
