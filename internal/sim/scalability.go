package sim

import (
	"fmt"
	"sync"
	"time"

	"gpunion/internal/aggregator"
	"gpunion/internal/api"
	"gpunion/internal/db"
	"gpunion/internal/gpu"
	"gpunion/internal/heartbeat"
	"gpunion/internal/scheduler"
	"gpunion/internal/simclock"
)

// ScalabilityConfig parameterises the §5.3 study: "the central
// coordinator handles up to 50 nodes with sub-second scheduling
// latency. However, beyond 200 nodes, heartbeat monitoring and database
// contention could become bottlenecks."
type ScalabilityConfig struct {
	// NodeCounts is the sweep (default 10, 25, 50, 100, 200, 400, 800,
	// 2000, 5000 — the 800 point was added once the store's queue
	// queries stopped being the coordinator bottleneck; 2000 once
	// heartbeat coalescing made the write path scale with churn, not
	// fleet size; 5000 once the rack aggregation tier made coordinator
	// ingress O(racks + churn) instead of O(nodes)).
	NodeCounts []int
	// DecisionsPerPoint is how many scheduling decisions to time.
	DecisionsPerPoint int
	// DBOpDelay models per-operation database latency (default 50 µs),
	// the §5.3 contention source.
	DBOpDelay time.Duration
	// OpsPerWorker fixes the contended-throughput workload size per
	// writer (default 120). A fixed op count — rather than a wall-clock
	// window — makes the benchmark's work deterministic; only the
	// measured elapsed time varies with the machine.
	OpsPerWorker int
	// Seed varies request shapes.
	Seed int64
}

// ScalabilityRow is one sweep point.
type ScalabilityRow struct {
	Nodes int
	// MeanSchedulingLatency / P95SchedulingLatency time one placement
	// decision against the full node view.
	MeanSchedulingLatency time.Duration
	P95SchedulingLatency  time.Duration
	// BatchMeanPerDecision is the per-decision cost when decisions are
	// drained through PlaceBatch (candidate set built once per batch).
	BatchMeanPerDecision time.Duration
	// BatchSpeedup is MeanSchedulingLatency / BatchMeanPerDecision.
	BatchSpeedup float64
	// SubSecond reports the paper's operating criterion.
	SubSecond bool
	// HeartbeatSweepLatency is one full failure-detection pass.
	HeartbeatSweepLatency time.Duration
	// DBOpsPerSecond is contended throughput on the sharded central
	// database with 8 concurrent writers.
	DBOpsPerSecond float64
	// SingleMutexOpsPerSecond is the same workload on the preserved
	// single-mutex baseline — the §5.3 bottleneck the sharding removes.
	SingleMutexOpsPerSecond float64
	// CoalescedBeatsPerSecond is the same heartbeat-commit demand driven
	// through the coalesced write path: each worker flushes its beats as
	// TouchNodes delta batches, paying one critical section per touched
	// shard instead of one per beat.
	CoalescedBeatsPerSecond float64
	// CoalesceSpeedup is CoalescedBeatsPerSecond / DBOpsPerSecond — the
	// write-path win of per-shard beat batching over per-beat commits.
	CoalesceSpeedup float64
	// AggRacks is the aggregation-tier shape at this fleet size (one
	// relay per ingressRackSize nodes).
	AggRacks int
	// DirectIngressPerSecond is the coordinator ingress request rate
	// with every agent beating the coordinator itself (one request per
	// beat at the fleet heartbeat interval).
	DirectIngressPerSecond float64
	// AggIngressPerSecond is the same fleet's coordinator ingress rate
	// behind per-rack aggregators: folded no-op beats arrive as one
	// request per roll-up window, only telemetry-carrying beats pass
	// through. Measured by driving the real relay on a simulated clock.
	AggIngressPerSecond float64
	// IngressReduction is DirectIngressPerSecond / AggIngressPerSecond —
	// the tier's headline: ingress cost O(racks + churn), not O(nodes).
	IngressReduction float64
	// RequiredDBOpsPerSecond is what N nodes' heartbeat processing
	// demands (≈4 database operations per beat at a 10 s interval).
	RequiredDBOpsPerSecond float64
	// Headroom is sharded capacity over demand; below ~1 the
	// coordinator's database is the bottleneck (the paper's §5.3 concern
	// beyond 200 nodes on modest hardware).
	Headroom float64
	// SingleMutexHeadroom is the baseline's capacity over demand.
	SingleMutexHeadroom float64
}

// RunScalability measures coordinator-side costs across node counts.
// These are real wall-clock measurements of the actual scheduler,
// heartbeat monitor and database — not simulated time.
func RunScalability(cfg ScalabilityConfig) ([]ScalabilityRow, error) {
	if len(cfg.NodeCounts) == 0 {
		cfg.NodeCounts = []int{10, 25, 50, 100, 200, 400, 800, 2000, 5000}
	}
	if cfg.DecisionsPerPoint <= 0 {
		cfg.DecisionsPerPoint = 200
	}
	if cfg.DBOpDelay <= 0 {
		cfg.DBOpDelay = 50 * time.Microsecond
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 120
	}
	now := Epoch
	var rows []ScalabilityRow
	for _, n := range cfg.NodeCounts {
		nodes := syntheticNodes(n)

		// --- Scheduling latency over the full node view. ---
		sched := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
		lat := make([]time.Duration, 0, cfg.DecisionsPerPoint)
		for i := 0; i < cfg.DecisionsPerPoint; i++ {
			req := scheduler.Request{
				JobID:      fmt.Sprintf("bench-%d", i),
				GPUMemMiB:  8192,
				Capability: gpu.ComputeCapability{Major: 7, Minor: 0},
			}
			start := time.Now()
			_, _ = sched.Schedule(req, nodes, now)
			lat = append(lat, time.Since(start))
		}
		mean, p95 := latencyStats(lat)

		// --- Batch scheduling: the same decisions drained through
		// PlaceBatch, candidate pool built once per batch. The batch is
		// capped at the free-device count so every member does the full
		// filter-and-order work the single-decision baseline does — an
		// exhausted batch tail would early-exit cheaply and flatter the
		// comparison.
		free := 0
		for _, rec := range nodes {
			if rec.Status != db.NodeActive {
				continue
			}
			for _, g := range rec.GPUs {
				if !g.Allocated {
					free++
				}
			}
		}
		batchSize := 32
		if free < batchSize {
			batchSize = free
		}
		if batchSize < 1 {
			batchSize = 1
		}
		batchSched := scheduler.New(&scheduler.RoundRobin{}, scheduler.DefaultReliability())
		reqs := make([]scheduler.Request, 0, batchSize)
		batchStart := time.Now()
		for i := 0; i < cfg.DecisionsPerPoint; i++ {
			reqs = append(reqs, scheduler.Request{
				JobID:      fmt.Sprintf("batch-%d", i),
				GPUMemMiB:  8192,
				Capability: gpu.ComputeCapability{Major: 7, Minor: 0},
			})
			if len(reqs) == batchSize || i == cfg.DecisionsPerPoint-1 {
				_ = batchSched.PlaceBatch(reqs, nodes, now)
				reqs = reqs[:0]
			}
		}
		batchPerDecision := time.Since(batchStart) / time.Duration(cfg.DecisionsPerPoint)
		speedup := 0.0
		if batchPerDecision > 0 {
			speedup = float64(mean) / float64(batchPerDecision)
		}

		// --- Heartbeat sweep over n tracked nodes. ---
		hb := heartbeat.NewMonitor(10*time.Second, 3)
		for _, rec := range nodes {
			hb.Track(rec.ID, now)
		}
		for _, rec := range nodes {
			hb.Beat(rec.ID, now.Add(5*time.Second))
		}
		hbStart := time.Now()
		_ = hb.Lost(now.Add(time.Minute))
		hbLat := time.Since(hbStart)

		// --- Contended database throughput: sharded store vs the
		// preserved single-mutex baseline under the same writer load. ---
		sharded := db.New(0)
		single := db.NewSingleMutex(0)
		for _, rec := range nodes {
			sharded.UpsertNode(rec)
			single.UpsertNode(rec)
		}
		sharded.SetOpDelay(cfg.DBOpDelay)
		single.SetOpDelay(cfg.DBOpDelay)
		ops := contendedOps(sharded, nodes, 8, cfg.OpsPerWorker)
		singleOps := contendedOps(single, nodes, 8, cfg.OpsPerWorker)

		// Coalesced write path: the same beat volume on a fresh sharded
		// store (fresh so the forward-only delta filter sees untouched
		// heartbeats), committed as per-shard delta batches.
		coalStore := db.New(0)
		for _, rec := range nodes {
			coalStore.UpsertNode(rec)
		}
		coalStore.SetOpDelay(cfg.DBOpDelay)
		coalOps := coalescedOps(coalStore, nodes, 8, cfg.OpsPerWorker)
		coalSpeedup := 0.0
		if ops > 0 {
			coalSpeedup = coalOps / ops
		}

		// --- Coordinator ingress with and without the rack
		// aggregation tier, measured on the real relay. ---
		directIngress, aggIngress, racks := aggregatedIngress(n)
		reduction := 0.0
		if aggIngress > 0 {
			reduction = directIngress / aggIngress
		}

		// Heartbeat demand: one beat per node per 10 s, ~4 database
		// operations per beat (node update, telemetry samples, queue
		// check).
		required := float64(n) / 10 * 4
		rows = append(rows, ScalabilityRow{
			Nodes:                   n,
			MeanSchedulingLatency:   mean,
			P95SchedulingLatency:    p95,
			BatchMeanPerDecision:    batchPerDecision,
			BatchSpeedup:            speedup,
			SubSecond:               p95 < time.Second,
			HeartbeatSweepLatency:   hbLat,
			DBOpsPerSecond:          ops,
			SingleMutexOpsPerSecond: singleOps,
			CoalescedBeatsPerSecond: coalOps,
			CoalesceSpeedup:         coalSpeedup,
			AggRacks:                racks,
			DirectIngressPerSecond:  directIngress,
			AggIngressPerSecond:     aggIngress,
			IngressReduction:        reduction,
			RequiredDBOpsPerSecond:  required,
			Headroom:                ops / required,
			SingleMutexHeadroom:     singleOps / required,
		})
	}
	return rows, nil
}

// Aggregation-tier shape for the ingress measurement, mirroring the
// fleet's production cadence: 64-node racks, 10 s beats, a telemetry
// sample every 6th beat (so one sample per node per minute), 30 s
// roll-up windows.
const (
	ingressRackSize       = 64
	ingressBeatEvery      = 10 * time.Second
	ingressTelemetryEvery = 6
	ingressFlushWindow    = 30 * time.Second
	ingressSpan           = 10 * time.Minute
)

// countingUpstream stands in for the coordinator on the ingress sweep:
// every IngestAggregated call is one coordinator ingress request.
type countingUpstream struct {
	mu       sync.Mutex
	requests uint64
}

func (u *countingUpstream) IngestAggregated(api.AggregatedBeat) (api.AggregatedBeatResponse, error) {
	u.mu.Lock()
	u.requests++
	u.mu.Unlock()
	return api.AggregatedBeatResponse{Acknowledged: true}, nil
}

// aggregatedIngress measures coordinator ingress request rates for an
// n-node steady-state fleet, direct vs. behind per-rack relays. The
// aggregated arm drives the real internal/aggregator on a simulated
// clock — telemetry-carrying beats pass through (each one upstream
// request, draining the parked window), off-cadence beats fold and
// ride the window's flush timer — so the figure reflects the relay's
// actual forwarding behavior, not a formula. The direct arm is exact:
// one ingress request per beat. Telemetry phase is staggered across
// nodes (agents boot at different times), spreading pass-throughs
// evenly instead of synchronizing the whole fleet's sample beats.
func aggregatedIngress(n int) (directPerSec, aggPerSec float64, racks int) {
	clock := simclock.NewSim(Epoch)
	up := &countingUpstream{}
	racks = (n + ingressRackSize - 1) / ingressRackSize
	aggs := make([]*aggregator.Aggregator, racks)
	for i := range aggs {
		aggs[i] = aggregator.New(aggregator.Config{
			ID:            fmt.Sprintf("rack-%03d", i),
			FlushInterval: ingressFlushWindow,
		}, clock, up)
	}
	defer func() {
		for _, g := range aggs {
			g.Stop()
		}
	}()
	telemetry := []gpu.Telemetry{{
		DeviceID: "gpu0", Model: "RTX 3090",
		Utilization: 0.5, UsedMemMiB: 8192, TotalMemMiB: 24576,
		TemperatureC: 60, PowerW: 250,
	}}
	var beats uint64
	seq := uint64(0)
	for elapsed := time.Duration(0); elapsed < ingressSpan; elapsed += ingressBeatEvery {
		seq++
		for i := 0; i < n; i++ {
			req := api.HeartbeatRequest{
				MachineID: fmt.Sprintf("node-%04d", i),
				BeatSeq:   seq,
			}
			if (seq+uint64(i))%ingressTelemetryEvery == 0 {
				req.Telemetry = telemetry
			}
			_, _ = aggs[i/ingressRackSize].Ingest(req)
			beats++
		}
		clock.Advance(ingressBeatEvery)
	}
	// Drain windows still parked at the end of the span.
	clock.Advance(ingressFlushWindow)
	up.mu.Lock()
	requests := up.requests
	up.mu.Unlock()
	span := ingressSpan.Seconds()
	return float64(beats) / span, float64(requests) / span, racks
}

// syntheticNodes builds n single-3090 node records, a fraction of them
// busy, paused or flaky so the scheduler does real filtering work.
func syntheticNodes(n int) []db.NodeRecord {
	nodes := make([]db.NodeRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := db.NodeRecord{
			ID:     fmt.Sprintf("node-%04d", i),
			Status: db.NodeActive,
			GPUs: []db.GPUInfo{{
				DeviceID: "gpu0", Model: "RTX 3090", Arch: "ampere",
				MemoryMiB: 24576, CapabilityMajor: 8, CapabilityMinor: 6,
				Allocated: i%3 == 0,
			}},
			Kernel:       "5.15",
			RegisteredAt: Epoch.Add(-30 * 24 * time.Hour),
			LastJoin:     Epoch.Add(-24 * time.Hour),
			Departures:   i % 5,
		}
		if i%11 == 0 {
			rec.Status = db.NodePaused
		}
		nodes = append(nodes, rec)
	}
	return nodes
}

func latencyStats(lat []time.Duration) (mean, p95 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean = sum / time.Duration(len(sorted))
	p95 = sorted[int(0.95*float64(len(sorted)-1))]
	return mean, p95
}

// contendedOps hammers a database with a fixed number of heartbeat
// commits per worker and returns achieved operations per second. The
// workload is deterministic (same records, same order per worker) —
// only the elapsed time is measured; no worker spins on the wall
// clock. It takes the Store interface so sharded and single-mutex
// implementations run the identical workload.
// coalescedOps drives the same heartbeat-commit volume through the
// coalesced write path. Each worker owns a disjoint stride of the
// fleet and flushes its beats as TouchNodes batches — one flush per
// pass over its slice, the shape a coordinator flush window produces —
// so a batch pays one shard critical section per touched shard rather
// than one per beat. Returns achieved beat commits per second.
func coalescedOps(store db.Store, nodes []db.NodeRecord, workers, opsPerWorker int) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := make([]string, 0, (len(nodes)+workers-1)/workers)
			for i := w; i < len(nodes); i += workers {
				own = append(own, nodes[i].ID)
			}
			if len(own) == 0 {
				own = append(own, nodes[w%len(nodes)].ID)
			}
			batch := make([]db.BeatDelta, 0, len(own))
			at := Epoch
			for done := 0; done < opsPerWorker; {
				round := opsPerWorker - done
				if round > len(own) {
					round = len(own)
				}
				at = at.Add(time.Second)
				batch = batch[:0]
				for i := 0; i < round; i++ {
					batch = append(batch, db.BeatDelta{NodeID: own[(done+i)%len(own)], At: at})
				}
				_ = store.TouchNodes(batch)
				done += round
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(workers*opsPerWorker) / elapsed
}

func contendedOps(store db.Store, nodes []db.NodeRecord, workers, opsPerWorker int) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < opsPerWorker; n++ {
				id := nodes[(w*31+n)%len(nodes)].ID
				_ = store.UpdateNode(id, func(rec *db.NodeRecord) {
					rec.LastHeartbeat = rec.LastHeartbeat.Add(time.Second)
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(workers*opsPerWorker) / elapsed
}
