// Package auth implements GPUnion's lightweight node identity and token
// scheme. New provider nodes join through automatic registration (§3.4):
// the agent generates a unique machine identifier, presents it to the
// coordinator, and obtains an HMAC-signed bearer token that authenticates
// subsequent heartbeats and API calls inside the trusted campus LAN.
//
// The design goal is minimal friction, not adversarial security: the
// campus network is trusted, so tokens exist to prevent accidental
// cross-talk (stale agents, mistyped coordinator addresses), not to
// resist a determined attacker.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Errors returned by token verification.
var (
	ErrMalformedToken = errors.New("auth: malformed token")
	ErrBadSignature   = errors.New("auth: bad signature")
	ErrExpired        = errors.New("auth: token expired")
	ErrWrongSubject   = errors.New("auth: token subject mismatch")
)

// NewMachineID generates a unique machine identifier of the form
// "node-<16 hex chars>" from a cryptographically random source, mirroring
// the registration scripts described in the paper.
func NewMachineID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("auth: generating machine id: %w", err)
	}
	return fmt.Sprintf("node-%x", b), nil
}

// Role distinguishes what a token authorizes.
type Role string

// Token roles.
const (
	RoleProvider Role = "provider" // agent → coordinator traffic
	RoleUser     Role = "user"     // client → coordinator traffic
)

// Claims is the signed payload of a token.
type Claims struct {
	// Subject is the machine ID (providers) or username (users).
	Subject string `json:"sub"`
	Role    Role   `json:"role"`
	// IssuedAt and ExpiresAt are Unix seconds.
	IssuedAt  int64 `json:"iat"`
	ExpiresAt int64 `json:"exp"`
}

// Authority issues and verifies tokens with a shared HMAC-SHA256 secret.
// The coordinator owns one Authority; agents and clients only hold the
// opaque tokens it mints.
type Authority struct {
	secret []byte
	ttl    time.Duration
}

// NewAuthority creates an Authority. If secret is empty a random one is
// generated (suitable for single-process deployments and tests). ttl <= 0
// defaults to 30 days, matching semester-scale participation.
func NewAuthority(secret []byte, ttl time.Duration) (*Authority, error) {
	if len(secret) == 0 {
		secret = make([]byte, 32)
		if _, err := rand.Read(secret); err != nil {
			return nil, fmt.Errorf("auth: generating secret: %w", err)
		}
	}
	if ttl <= 0 {
		ttl = 30 * 24 * time.Hour
	}
	return &Authority{secret: secret, ttl: ttl}, nil
}

// Issue mints a token for the subject with the given role, valid from now
// (the caller supplies now so simulated clocks work).
func (a *Authority) Issue(subject string, role Role, now time.Time) (string, error) {
	if subject == "" {
		return "", errors.New("auth: empty subject")
	}
	claims := Claims{
		Subject:   subject,
		Role:      role,
		IssuedAt:  now.Unix(),
		ExpiresAt: now.Add(a.ttl).Unix(),
	}
	payload, err := json.Marshal(claims)
	if err != nil {
		return "", fmt.Errorf("auth: encoding claims: %w", err)
	}
	body := base64.RawURLEncoding.EncodeToString(payload)
	sig := a.sign(body)
	return body + "." + sig, nil
}

// Verify checks the token's signature and expiry and returns its claims.
func (a *Authority) Verify(token string, now time.Time) (Claims, error) {
	body, sig, ok := strings.Cut(token, ".")
	if !ok || body == "" || sig == "" {
		return Claims{}, ErrMalformedToken
	}
	want := a.sign(body)
	if !hmac.Equal([]byte(sig), []byte(want)) {
		return Claims{}, ErrBadSignature
	}
	raw, err := base64.RawURLEncoding.DecodeString(body)
	if err != nil {
		return Claims{}, fmt.Errorf("%w: %v", ErrMalformedToken, err)
	}
	var claims Claims
	if err := json.Unmarshal(raw, &claims); err != nil {
		return Claims{}, fmt.Errorf("%w: %v", ErrMalformedToken, err)
	}
	if now.Unix() >= claims.ExpiresAt {
		return Claims{}, ErrExpired
	}
	return claims, nil
}

// VerifySubject verifies the token and additionally checks that it was
// issued to the expected subject, guarding against agents replaying each
// other's credentials.
func (a *Authority) VerifySubject(token, subject string, now time.Time) (Claims, error) {
	claims, err := a.Verify(token, now)
	if err != nil {
		return Claims{}, err
	}
	if claims.Subject != subject {
		return Claims{}, fmt.Errorf("%w: token for %q used by %q",
			ErrWrongSubject, claims.Subject, subject)
	}
	return claims, nil
}

func (a *Authority) sign(body string) string {
	mac := hmac.New(sha256.New, a.secret)
	mac.Write([]byte(body))
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}
