package auth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var now = time.Date(2025, 9, 1, 12, 0, 0, 0, time.UTC)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority([]byte("test-secret"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewMachineIDFormat(t *testing.T) {
	id, err := NewMachineID()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "node-") || len(id) != len("node-")+16 {
		t.Fatalf("machine id %q has wrong shape", id)
	}
}

func TestNewMachineIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id, err := NewMachineID()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate machine id %q", id)
		}
		seen[id] = true
	}
}

func TestIssueVerifyRoundTrip(t *testing.T) {
	a := newAuthority(t)
	tok, err := a.Issue("node-abc", RoleProvider, now)
	if err != nil {
		t.Fatal(err)
	}
	claims, err := a.Verify(tok, now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if claims.Subject != "node-abc" || claims.Role != RoleProvider {
		t.Fatalf("claims = %+v", claims)
	}
	if claims.IssuedAt != now.Unix() {
		t.Fatalf("IssuedAt = %d, want %d", claims.IssuedAt, now.Unix())
	}
}

func TestVerifyExpired(t *testing.T) {
	a := newAuthority(t)
	tok, err := a.Issue("node-abc", RoleProvider, now)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Verify(tok, now.Add(2*time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestVerifyExactExpiryRejected(t *testing.T) {
	a := newAuthority(t)
	tok, _ := a.Issue("node-abc", RoleProvider, now)
	if _, err := a.Verify(tok, now.Add(time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("token at exact expiry err = %v, want ErrExpired", err)
	}
}

func TestVerifyTamperedPayload(t *testing.T) {
	a := newAuthority(t)
	tok, _ := a.Issue("node-abc", RoleProvider, now)
	body, sig, _ := strings.Cut(tok, ".")
	// Flip a character in the payload.
	mutated := "A" + body[1:]
	if mutated == body {
		mutated = "B" + body[1:]
	}
	_, err := a.Verify(mutated+"."+sig, now)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered token err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyWrongSecret(t *testing.T) {
	a := newAuthority(t)
	other, err := NewAuthority([]byte("different"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := a.Issue("node-abc", RoleProvider, now)
	if _, err := other.Verify(tok, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("cross-authority verify err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyMalformed(t *testing.T) {
	a := newAuthority(t)
	for _, tok := range []string{"", "nodot", ".", "a.", ".b", "!!bad-base64!!.sig"} {
		if _, err := a.Verify(tok, now); err == nil {
			t.Errorf("Verify(%q) succeeded, want error", tok)
		}
	}
}

func TestVerifySubject(t *testing.T) {
	a := newAuthority(t)
	tok, _ := a.Issue("node-abc", RoleProvider, now)
	if _, err := a.VerifySubject(tok, "node-abc", now); err != nil {
		t.Fatalf("matching subject: %v", err)
	}
	if _, err := a.VerifySubject(tok, "node-xyz", now); !errors.Is(err, ErrWrongSubject) {
		t.Fatalf("wrong subject err = %v, want ErrWrongSubject", err)
	}
}

func TestIssueEmptySubject(t *testing.T) {
	a := newAuthority(t)
	if _, err := a.Issue("", RoleUser, now); err == nil {
		t.Fatal("Issue with empty subject succeeded")
	}
}

func TestRandomSecretAuthoritiesIndependent(t *testing.T) {
	a1, err := NewAuthority(nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAuthority(nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := a1.Issue("node-abc", RoleProvider, now)
	if _, err := a2.Verify(tok, now); err == nil {
		t.Fatal("token from one random authority verified by another")
	}
}

func TestDefaultTTL(t *testing.T) {
	a, err := NewAuthority([]byte("s"), 0)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := a.Issue("node-abc", RoleProvider, now)
	// Valid at day 29, expired at day 31.
	if _, err := a.Verify(tok, now.Add(29*24*time.Hour)); err != nil {
		t.Fatalf("day-29 verify: %v", err)
	}
	if _, err := a.Verify(tok, now.Add(31*24*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("day-31 verify err = %v, want ErrExpired", err)
	}
}

func TestUserRoleRoundTrip(t *testing.T) {
	a := newAuthority(t)
	tok, _ := a.Issue("alice", RoleUser, now)
	claims, err := a.Verify(tok, now)
	if err != nil || claims.Role != RoleUser {
		t.Fatalf("claims = %+v, err = %v", claims, err)
	}
}

// Property: any issued token verifies before expiry and yields the same
// subject, for arbitrary printable subjects.
func TestIssueVerifyProperty(t *testing.T) {
	a := newAuthority(t)
	f := func(raw []byte) bool {
		subject := "node-" + strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return 'x'
			}
			return r
		}, string(raw))
		tok, err := a.Issue(subject, RoleProvider, now)
		if err != nil {
			return false
		}
		claims, err := a.Verify(tok, now.Add(time.Second))
		return err == nil && claims.Subject == subject
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
