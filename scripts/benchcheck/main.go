// Command benchcheck is the benchmark regression gate behind
// `make bench-check`: it runs the headline benchmarks and fails when
// any of them regresses by more than the threshold against the
// recorded baseline (BENCH_baseline.json).
//
// Only benchmarks present in both the baseline and the measured run
// are compared, so adding new benchmarks never breaks the gate;
// improvements always pass. The gate is meant for the stable
// single-goroutine hot-path benches — highly parallel benchmarks are
// too noisy for a hard threshold and should stay out of the filter.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
)

// baselineFile mirrors the benchmarks section of BENCH_baseline.json.
type baselineFile struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result row, e.g.
// "BenchmarkDBJobQueueQuery-4   3867   83499 ns/op   ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// calibrationBench is the fixed pure-CPU workload used to normalize
// the baseline to this machine's speed (see bench_test.go). It always
// runs in addition to the gate filter.
const calibrationBench = "BenchmarkHotPathCalibration"

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON to compare against")
	bench := flag.String("bench", ".", "benchmark filter regex passed to go test -bench")
	threshold := flag.Float64("threshold", 25, "maximum tolerated ns/op regression, percent")
	benchtime := flag.String("benchtime", "300ms", "go test -benchtime (the baseline was recorded at 300ms)")
	count := flag.Int("count", 3, "runs per benchmark; the gate takes the best, so transient machine load cannot fail it")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal("reading baseline: %v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal("parsing baseline: %v", err)
	}
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNs[b.Name] = b.NsPerOp
	}

	cmd := exec.Command("go", "test", "-bench=("+*bench+")|"+calibrationBench+"$",
		"-benchtime="+*benchtime, "-count="+strconv.Itoa(*count), "-run=^$", *pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal("running benchmarks: %v", err)
	}

	// Best result per benchmark across the -count runs: a genuinely
	// regressed hot path is slow in every run, while a noisy neighbour
	// only inflates some of them.
	best := make(map[string]float64)
	var order []string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		got, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, seen := best[m[1]]; !seen || got < prev {
			if !seen {
				order = append(order, m[1])
			}
			best[m[1]] = got
		}
	}

	// Hardware normalization: scale the baseline by how this machine's
	// calibration run compares to the baseline's, so the threshold
	// measures code regressions rather than host-speed deltas.
	scale := 1.0
	if gotCal, ok := best[calibrationBench]; ok {
		if baseCal := baseNs[calibrationBench]; baseCal > 0 {
			scale = gotCal / baseCal
			fmt.Printf("  calibration: %.0f ns/op vs baseline %.0f — host speed factor %.2fx\n",
				gotCal, baseCal, scale)
		} else {
			fmt.Printf("  calibration: %.0f ns/op, no baseline entry — comparing unscaled\n", gotCal)
		}
	}

	failed := false
	compared := 0
	for _, name := range order {
		if name == calibrationBench {
			continue
		}
		got := best[name]
		want, ok := baseNs[name]
		if !ok || want <= 0 {
			fmt.Printf("  %-40s %12.0f ns/op  (no baseline, skipped)\n", name, got)
			continue
		}
		want *= scale
		compared++
		deltaPct := 100 * (got - want) / want
		verdict := "ok"
		if deltaPct > *threshold {
			verdict = fmt.Sprintf("REGRESSION (> %.0f%%)", *threshold)
			failed = true
		}
		fmt.Printf("  %-40s %12.0f ns/op  baseline %12.0f  %+7.1f%%  %s\n",
			name, got, want, deltaPct, verdict)
	}
	if compared == 0 {
		fatal("no benchmark matched both the filter %q and the baseline", *bench)
	}
	if failed {
		fatal("benchmark regression beyond %.0f%% of %s", *threshold, *baselinePath)
	}
	fmt.Printf("bench-check: %d benchmarks within %.0f%% of baseline\n", compared, *threshold)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchcheck: "+format+"\n", args...)
	os.Exit(1)
}
