// Command doccheck fails the build when an internal package lacks a
// package doc comment ("// Package xxx ..."), so `go doc ./internal/...`
// always reads as a tour of the system. It walks every directory under
// the given roots (default: internal) that contains non-test Go files
// and requires at least one of them to carry the package comment.
//
// Usage: go run ./scripts/doccheck [roots...]
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal"}
	}
	var missing []string
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		for _, dir := range dirs {
			ok, err := hasPackageDoc(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
				os.Exit(1)
			}
			if !ok {
				missing = append(missing, dir)
			}
		}
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "doccheck: packages missing a package doc comment (// Package xxx ...):")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
}

// packageDirs lists every directory under root containing non-test Go
// files.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for dir := range seen {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageDoc reports whether any non-test file in dir carries a
// package doc comment.
func hasPackageDoc(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package ") {
			return true, nil
		}
	}
	return false, nil
}
